//! Figures 14–16: the meterdata ⋈ userInfo join query at the paper's
//! three selectivities.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::{IntervalSize, MeterLab};
use dgf_query::Engine;
use dgf_workload::{join_query, Selectivity};

fn bench(c: &mut Criterion) {
    let lab = MeterLab::build(common::bench_scale()).unwrap();
    let mut g = c.benchmark_group("fig14_16_join");
    g.sample_size(10);
    for sel in Selectivity::paper_settings() {
        let q = join_query(&lab.scale.meter, sel);
        for size in IntervalSize::all() {
            let engine = lab.dgf_engine(size);
            g.bench_function(format!("dgf_{}/{}", size.label(), sel.label()), |b| {
                b.iter(|| engine.run(&q).unwrap())
            });
        }
        let engine = lab.compact_engine();
        g.bench_function(format!("compact2/{}", sel.label()), |b| {
            b.iter(|| engine.run(&q).unwrap())
        });
        let engine = lab.hadoopdb_engine();
        g.bench_function(format!("hadoopdb/{}", sel.label()), |b| {
            b.iter(|| engine.run(&q).unwrap())
        });
        let engine = lab.scan_engine();
        g.bench_function(format!("scan/{}", sel.label()), |b| {
            b.iter(|| engine.run(&q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
