//! Sub-slice skipping bench: sidecar zone-map + bitmap pruning vs. the
//! unpruned boundary scan on an RCFile meter table (DESIGN.md §15).
//! Asserts the PR's ≤ 25%-of-slice-bytes acceptance bar on selective
//! boundary / non-grid-dimension queries and writes `BENCH_sidecar.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::sidecar::{sidecar_json, SidecarLab};

fn bench(c: &mut Criterion) {
    // 200k rows, 512-row groups over a 16-cell grid: each slice holds
    // enough groups that sub-slice skipping has real room to work.
    let lab = SidecarLab::build(200_000, 512).unwrap();
    let reps = 5;

    let passes: Vec<_> = lab
        .queries()
        .into_iter()
        .map(|(name, q)| lab.pass(name, &q, reps).unwrap())
        .collect();
    for p in &passes {
        println!(
            "sidecar {}: pruned {:.3?} ({} bytes) | unpruned {:.3?} ({} bytes) | \
             ratio {:.1}% | {} groups pruned, {} hits",
            p.name,
            p.pruned_time,
            p.pruned_bytes,
            p.unpruned_time,
            p.unpruned_bytes,
            p.bytes_ratio() * 100.0,
            p.scan.sidecar_groups_pruned,
            p.scan.sidecar_hits,
        );
        // The PR's acceptance bar: selective queries read ≤ 25% of the
        // slice bytes the unpruned scan reads, bit-identically.
        assert!(
            p.bytes_ratio() <= 0.25,
            "{}: read {:.1}% of unpruned slice bytes (need <= 25%)",
            p.name,
            p.bytes_ratio() * 100.0
        );
        assert_eq!(
            p.pruned_bytes + p.scan.sidecar_bytes_skipped,
            p.unpruned_bytes,
            "{}: bytes-skipped ledger does not reconcile",
            p.name
        );
    }

    let json = sidecar_json("meter_scx 200k rows, groups 512, 4 files", lab.rows, &passes);
    let path = std::env::var("DGF_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_sidecar.json").to_owned()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sidecar: wrote pruning report JSON to {path}"),
        Err(e) => eprintln!("sidecar: could not write {path}: {e}"),
    }

    // One criterion-timed sample for regression tracking: the most
    // selective pruned pass.
    let (name, q) = lab.queries().remove(0);
    c.bench_function("sidecar_pruned_boundary_scan", |b| {
        b.iter(|| lab.pass(name, &q, 1).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
