//! Shared setup for the criterion benches: a bench-sized scale preset.
//!
//! Criterion re-runs the measured closure many times, so the datasets here
//! are smaller than `repro`'s; the `repro` binary is the place for
//! paper-scale numbers, these benches guard against regressions in each
//! experiment's code path.

use dgf_bench::BenchScale;

/// A sub-second lab scale for criterion iteration.
pub fn bench_scale() -> BenchScale {
    let mut s = BenchScale::small();
    s.meter.users = 600;
    s.meter.days = 30;
    s.tpch.rows = 15_000;
    s.ingest_rows = 6_000;
    s.runs = 1;
    s.kv_latency = dgf_kvstore::LatencyModel::ZERO;
    s.hadoopdb.per_chunk_overhead = std::time::Duration::ZERO;
    s
}
