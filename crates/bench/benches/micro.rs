//! Micro-benchmarks of the DGFIndex hot paths: grid planning, GFU key
//! codec, range coalescing, and key-value store operations.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::{IntervalSize, MeterLab};
use dgf_core::GfuKey;
use dgf_format::{coalesce_ranges, ByteRange};
use dgf_kvstore::{KvStore, MemKvStore};
use dgf_workload::{aggregation_query, Selectivity};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    g.bench_function("gfu_key_encode_decode", |b| {
        let key = GfuKey::new(vec![1234, 5, 17_532]);
        b.iter(|| {
            let e = key.encode();
            GfuKey::decode(&e, 3).unwrap()
        })
    });

    g.bench_function("coalesce_1000_ranges", |b| {
        let ranges: Vec<ByteRange> = (0..1000u64)
            .map(|i| ByteRange::new(i * 37 % 5000, i * 37 % 5000 + 20))
            .collect();
        b.iter(|| coalesce_ranges(ranges.clone()))
    });

    g.bench_function("memkv_get", |b| {
        let kv = MemKvStore::new();
        for i in 0..10_000u64 {
            kv.put(&i.to_be_bytes(), &[0u8; 32]).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % 10_000;
            kv.get(&i.to_be_bytes()).unwrap()
        })
    });

    let lab = MeterLab::build(common::bench_scale()).unwrap();
    let q = aggregation_query(&lab.scale.meter, Selectivity::Frac(0.12));
    g.bench_function("dgf_plan_only_12pct", |b| {
        let idx = &lab.dgf[IntervalSize::Small.idx()];
        b.iter(|| idx.plan(&q, true).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
