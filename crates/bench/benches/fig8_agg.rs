//! Figures 8–10 / Table 3: the MDRQ aggregation query at the paper's
//! three selectivities across all engines.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::{IntervalSize, MeterLab};
use dgf_query::Engine;
use dgf_workload::{aggregation_query, Selectivity};

fn bench(c: &mut Criterion) {
    let lab = MeterLab::build(common::bench_scale()).unwrap();
    let mut g = c.benchmark_group("fig8_10_aggregation");
    g.sample_size(10);
    for sel in Selectivity::paper_settings() {
        let q = aggregation_query(&lab.scale.meter, sel);
        for size in IntervalSize::all() {
            let engine = lab.dgf_engine(size);
            g.bench_function(format!("dgf_{}/{}", size.label(), sel.label()), |b| {
                b.iter(|| engine.run(&q).unwrap())
            });
        }
        let engine = lab.compact_engine();
        g.bench_function(format!("compact2/{}", sel.label()), |b| {
            b.iter(|| engine.run(&q).unwrap())
        });
        let engine = lab.hadoopdb_engine();
        g.bench_function(format!("hadoopdb/{}", sel.label()), |b| {
            b.iter(|| engine.run(&q).unwrap())
        });
        let engine = lab.scan_engine();
        g.bench_function(format!("scan/{}", sel.label()), |b| {
            b.iter(|| engine.run(&q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
