//! Streaming-ingestion bench: WAL-acknowledged write throughput, the
//! latency from acknowledgement to query visibility (the freshness the
//! subsystem exists for), and the flush that folds buffers into Slices.
//!
//! Emits `BENCH_ingest.json` ($DGF_BENCH_JSON or target/BENCH_ingest.json)
//! with throughput, visibility latency, flush timings, and the ingestor's
//! own counter snapshot.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_common::{Result, Row, TempDir};
use dgf_core::{DgfEngine, DgfIndex, DimPolicy, SplittingPolicy};
use dgf_format::FileFormat;
use dgf_hive::HiveContext;
use dgf_ingest::{IngestConfig, StreamIngestor};
use dgf_kvstore::{KvStore, MemKvStore};
use dgf_mapreduce::MrEngine;
use dgf_query::{AggFunc, Engine, Predicate, Query};
use dgf_storage::SimHdfs;
use dgf_workload::{generate_meter_data, meter_schema, stream_meter_data, MeterConfig};

/// A seeded warehouse plus a live ingestor over a fresh WAL.
struct IngestLab {
    _tmp: TempDir,
    index: Arc<DgfIndex>,
    ingestor: StreamIngestor,
    engine: DgfEngine,
    stream: Vec<Vec<Row>>,
}

fn meter_cfg(users: u64, days: u64) -> MeterConfig {
    MeterConfig {
        users,
        days,
        // Quarter-hourly readings (paper: up to 96/day) make the stream
        // big enough for throughput numbers to mean something.
        readings_per_day: 24,
        ..MeterConfig::default()
    }
}

impl IngestLab {
    /// Seed the index with one day of `users` meters, leave `days - 1`
    /// days of rows as the stream, batched collection-time order.
    fn build(users: u64, days: u64, batch_rows: usize) -> Result<IngestLab> {
        let cfg = meter_cfg(users, days);
        let tmp = TempDir::new("bench-ingest")?;
        let hdfs = SimHdfs::open(tmp.path())?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(2));
        let base = ctx.create_table("meter", meter_schema(), FileFormat::Text)?;
        let seeded = generate_meter_data(&meter_cfg(users, 1));
        ctx.load_rows(&base, &seeded, 2)?;
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, (users as i64 / 16).max(1)),
            DimPolicy::date("ts", cfg.start_day, 1),
        ])?;
        let kv: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
        let (index, _) = DgfIndex::build(
            Arc::clone(&ctx),
            base,
            policy,
            vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count],
            kv,
            "dgf_bench",
        )?;
        let index = Arc::new(index);
        let ingestor = StreamIngestor::open(
            Arc::clone(&index),
            tmp.path().join("ingest.wal"),
            IngestConfig {
                flush_rows: u64::MAX,
                auto_flush_interval: None,
                ..IngestConfig::default()
            },
        )?;
        let stream: Vec<Vec<Row>> = stream_meter_data(&cfg, batch_rows)
            .map(|b| {
                b.into_iter()
                    .filter(|r| r[2].as_i64().unwrap() > cfg.start_day)
                    .collect::<Vec<Row>>()
            })
            .filter(|b: &Vec<Row>| !b.is_empty())
            .collect();
        let engine = DgfEngine::new(Arc::clone(&index));
        Ok(IngestLab {
            _tmp: tmp,
            index,
            ingestor,
            engine,
            stream,
        })
    }

    /// Swap the hold-everything ingestor for one that inline-flushes
    /// every 20k rows, so unbounded criterion iteration stays bounded.
    fn rebind_for_steady_state(&mut self) -> Result<()> {
        self.ingestor.flush()?;
        let replacement = StreamIngestor::open(
            Arc::clone(&self.index),
            self._tmp.path().join("ingest-steady.wal"),
            IngestConfig {
                flush_rows: 20_000,
                max_buffered_bytes: u64::MAX,
                auto_flush_interval: None,
                ..IngestConfig::default()
            },
        )?;
        self.ingestor = replacement;
        Ok(())
    }

    fn count_query(&self) -> Query {
        Query::Aggregate {
            aggs: vec![AggFunc::Count, AggFunc::Sum("power_consumed".into())],
            predicate: Predicate::all(),
        }
    }
}

struct IngestReport {
    rows: u64,
    batches: u64,
    ingest_wall: Duration,
    visibility: Vec<Duration>,
    flush_wall: Duration,
    flushed_rows: u64,
    generation_bumps: u64,
    wal_bytes: u64,
    wal_syncs: u64,
}

/// Stream every batch, sampling ack→query-visible latency every
/// `sample_every` batches, then flush once at the end.
fn ingest_experiment(users: u64, days: u64, batch_rows: usize) -> Result<IngestReport> {
    let lab = IngestLab::build(users, days, batch_rows)?;
    let query = lab.count_query();
    let gen_before = lab.index.generation();
    let sample_every = (lab.stream.len() / 16).max(1);

    let mut visibility = Vec::new();
    let started = Instant::now();
    for (i, batch) in lab.stream.iter().enumerate() {
        let t0 = Instant::now();
        lab.ingestor.ingest(batch)?;
        if i % sample_every == 0 {
            // Ack-to-visible: the query right after the ack already folds
            // the batch in; its wall time bounds the freshness latency.
            lab.engine.run(&query)?;
            visibility.push(t0.elapsed());
        }
    }
    let ingest_wall = started.elapsed();
    let generation_bumps = lab.index.generation() - gen_before;

    let flush_started = Instant::now();
    lab.ingestor.flush()?;
    let flush_wall = flush_started.elapsed();

    let s = lab.ingestor.stats();
    Ok(IngestReport {
        rows: s.rows,
        batches: s.batches,
        ingest_wall,
        visibility,
        flush_wall,
        flushed_rows: s.flushed_rows,
        generation_bumps,
        wal_bytes: s.wal_bytes,
        wal_syncs: s.wal_syncs,
    })
}

fn micros(d: &Duration) -> u128 {
    d.as_micros()
}

fn ingest_json(config: &str, r: &IngestReport) -> String {
    let max_vis = r.visibility.iter().max().cloned().unwrap_or_default();
    let sum_vis: Duration = r.visibility.iter().sum();
    let mean_vis = sum_vis.checked_div(r.visibility.len().max(1) as u32).unwrap_or_default();
    format!(
        concat!(
            "{{\"experiment\":\"ingest\",\"config\":\"{config}\",",
            "\"rows\":{rows},\"batches\":{batches},",
            "\"ingest_wall_us\":{wall},\"rows_per_sec\":{rps:.0},",
            "\"visibility_samples\":{vn},\"visibility_mean_us\":{vmean},",
            "\"visibility_max_us\":{vmax},",
            "\"flush_wall_us\":{fwall},\"flushed_rows\":{frows},",
            "\"generation_bumps_before_flush\":{bumps},",
            "\"wal_bytes\":{wb},\"wal_syncs\":{ws}}}"
        ),
        config = config,
        rows = r.rows,
        batches = r.batches,
        wall = micros(&r.ingest_wall),
        rps = r.rows as f64 / r.ingest_wall.as_secs_f64().max(1e-9),
        vn = r.visibility.len(),
        vmean = micros(&mean_vis),
        vmax = micros(&max_vis),
        fwall = micros(&r.flush_wall),
        frows = r.flushed_rows,
        bumps = r.generation_bumps,
        wb = r.wal_bytes,
        ws = r.wal_syncs,
    )
}

fn bench(c: &mut Criterion) {
    for (label, users, days, batch) in [
        ("small batches 64x4/b25", 64u64, 4u64, 25usize),
        ("large batches 64x4/b400", 64, 4, 400),
    ] {
        let r = ingest_experiment(users, days, batch).unwrap();
        println!(
            "ingest [{label}]: {} rows in {} batches, {:.0} rows/s acked | \
             visibility mean {:?} max {:?} ({} samples) | \
             flush {} rows in {:?} | {} generation bumps before flush",
            r.rows,
            r.batches,
            r.rows as f64 / r.ingest_wall.as_secs_f64().max(1e-9),
            r.visibility.iter().sum::<Duration>() / r.visibility.len().max(1) as u32,
            r.visibility.iter().max().cloned().unwrap_or_default(),
            r.visibility.len(),
            r.flushed_rows,
            r.flush_wall,
            r.generation_bumps,
        );
        assert_eq!(
            r.generation_bumps, 0,
            "freshness merge must not bump the header-cache generation"
        );
    }

    // BENCH_ingest.json: the large-batch configuration's full report.
    let r = ingest_experiment(64, 4, 400).unwrap();
    let json = ingest_json("64 users x 4 days, batch 400", &r);
    let path = std::env::var("DGF_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_ingest.json").to_owned()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("ingest: wrote throughput/freshness JSON to {path}"),
        Err(e) => eprintln!("ingest: could not write {path}: {e}"),
    }

    // Steady-state criterion timings over a persistent lab: the acked
    // write itself, and the fresh-merge query while buffers are hot.
    // The inline flush (every `flush_rows`) keeps buffered memory bounded
    // however many iterations criterion runs; its cost amortizes into the
    // ack timing exactly as it would for a real writer.
    let mut lab = IngestLab::build(64, 30, 50).unwrap();
    lab.rebind_for_steady_state().unwrap();
    let lab = lab;
    let mut next = 0usize;
    let mut g = c.benchmark_group("ingest");
    g.bench_function("ack_one_batch_50_rows", |b| {
        b.iter(|| {
            let batch = &lab.stream[next % lab.stream.len()];
            next += 1;
            lab.ingestor.ingest(batch).unwrap()
        })
    });
    let query = lab.count_query();
    g.bench_function("fresh_merge_query", |b| {
        b.iter(|| lab.engine.run(&query).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
