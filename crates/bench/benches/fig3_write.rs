//! Figure 3: write-throughput of DBMS-X (with/without index) vs HDFS.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_common::TempDir;
use dgf_rdbms::{measure_ingest, IngestTarget};
use dgf_workload::{generate_meter_data, MeterConfig};

fn bench(c: &mut Criterion) {
    let scale = common::bench_scale();
    let cfg = MeterConfig {
        users: (scale.ingest_rows / 30).max(1),
        days: 30,
        ..scale.meter.clone()
    };
    let rows = generate_meter_data(&cfg);
    let mut g = c.benchmark_group("fig3_write_throughput");
    g.sample_size(10);
    g.bench_function("dbmsx_with_index", |b| {
        b.iter(|| {
            let t = TempDir::new("bench-btree").unwrap();
            measure_ingest(t.path(), &rows, IngestTarget::BTree { key_col: 0 }).unwrap()
        })
    });
    g.bench_function("dbmsx_without_index", |b| {
        b.iter(|| {
            let t = TempDir::new("bench-heap").unwrap();
            measure_ingest(t.path(), &rows, IngestTarget::Heap).unwrap()
        })
    });
    g.bench_function("hdfs", |b| {
        b.iter(|| {
            let t = TempDir::new("bench-hdfs").unwrap();
            let hdfs = dgf_storage::SimHdfs::open(t.path()).unwrap();
            let mut w = dgf_format::TextWriter::create(&hdfs, "/ingest/part-0").unwrap();
            for r in &rows {
                w.write_row(r).unwrap();
            }
            w.close().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
