//! Figure 18 / Tables 5–6: TPC-H Q6 over DGF, Compact-2D/3D, and scan.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::TpchLab;
use dgf_query::Engine;
use dgf_workload::tpch::q6;

fn bench(c: &mut Criterion) {
    let lab = TpchLab::build(common::bench_scale()).unwrap();
    let q = q6(1994, 0.06, 24.0);
    let mut g = c.benchmark_group("fig18_tpch_q6");
    g.sample_size(10);
    let engine = lab.dgf_engine();
    g.bench_function("dgf", |b| b.iter(|| engine.run(&q).unwrap()));
    let engine = lab.dgf_engine().without_precompute();
    g.bench_function("dgf_noprecompute", |b| b.iter(|| engine.run(&q).unwrap()));
    let engine = lab.compact2_engine();
    g.bench_function("compact_2d", |b| b.iter(|| engine.run(&q).unwrap()));
    let engine = lab.compact3_engine();
    g.bench_function("compact_3d", |b| b.iter(|| engine.run(&q).unwrap()));
    let engine = lab.scan_engine();
    g.bench_function("scan", |b| b.iter(|| engine.run(&q).unwrap()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
