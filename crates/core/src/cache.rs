//! Generation-tagged GFU header cache.
//!
//! Planning a query reads the same GFU values over and over: dashboards
//! re-issue the same aggregation every few seconds, and the inner region
//! of a stable grid never changes between appends. This cache keeps
//! decoded [`GfuValue`]s (headers *and* slice locations) in memory,
//! keyed by the encoded [`GfuKey`](crate::gfu::GfuKey) **qualified by
//! the index generation** the value was read at — the generation of the
//! [`ReadView`](crate::view::ReadView) a plan pinned. Entries of
//! different generations coexist: a reader pinned to an older view keeps
//! hitting its own entries while a commit is publishing the next
//! generation, and superseded entries simply age out of the LRU. An
//! entry can therefore never be served to a view it does not belong to,
//! with no invalidation coordination at commit time at all.
//!
//! The cache also stores **negative entries** (`None`) for cells the
//! planner proved absent by scanning their key run. Without them a
//! repeated query could never tell "absent" from "evicted" and would
//! have to re-scan; with them, a repeated identical query is answered
//! entirely from memory with zero key-value traffic.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::gfu::GfuValue;

/// Default total entry capacity of a [`GfuHeaderCache`].
pub const DEFAULT_HEADER_CACHE_CAPACITY: usize = 1 << 16;

const SHARDS: usize = 8;

/// A cached lookup result: `Some(v)` for a present GFU, `None` for a
/// cell proven absent at this generation.
pub type CachedGfu = Option<Arc<GfuValue>>;

/// Cumulative hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache (including negative entries).
    pub hits: u64,
    /// Probes that found no entry for the probed generation.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when no probes happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The stored key: big-endian generation, then the raw GFU key, so
/// entries of one generation cluster and can never alias another's.
fn tag(generation: u64, key: &[u8]) -> Vec<u8> {
    let mut t = Vec::with_capacity(8 + key.len());
    t.extend_from_slice(&generation.to_be_bytes());
    t.extend_from_slice(key);
    t
}

struct Shard {
    /// LRU clock, incremented per touch.
    stamp: u64,
    entries: HashMap<Vec<u8>, (CachedGfu, u64)>,
    /// stamp → tagged key, for O(log n) eviction of the coldest entry.
    lru: BTreeMap<u64, Vec<u8>>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            stamp: 0,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
        }
    }

    fn touch(&mut self, tagged: &[u8]) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some((_, old)) = self.entries.get_mut(tagged) {
            self.lru.remove(old);
            *old = stamp;
            self.lru.insert(stamp, tagged.to_vec());
        }
    }
}

/// Sharded LRU cache of decoded GFU values, keyed by `(generation, key)`.
///
/// Thread-safe behind `&self`; locks are per-shard so concurrent plans
/// probing different keys rarely contend. Shard selection hashes the
/// *raw* key only, so the same cell lands in the same shard at every
/// generation and stale generations drain evenly.
pub struct GfuHeaderCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Highest generation floor passed to [`retire_below`]
    /// (Self::retire_below): lets repeated calls at the same floor skip
    /// the shard sweep entirely.
    floor: AtomicU64,
}

impl GfuHeaderCache {
    /// A cache holding up to `capacity` entries across all shards.
    pub fn new(capacity: usize) -> GfuHeaderCache {
        GfuHeaderCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            floor: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<Shard> {
        let h = dgf_common::codec::fnv1a(key) as usize;
        &self.shards[h % SHARDS]
    }

    /// Probe for `key` at `generation`. `Some(cached)` is a hit — where
    /// `cached` itself may be a negative entry; `None` is a miss. Counts
    /// toward [`stats`](Self::stats) and refreshes the entry's LRU
    /// position.
    pub fn get(&self, generation: u64, key: &[u8]) -> Option<CachedGfu> {
        let tagged = tag(generation, key);
        let mut shard = self.shard(key).lock();
        match shard.entries.get(&tagged) {
            Some((value, _)) => {
                let value = value.clone();
                shard.touch(&tagged);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `value` for `key` at `generation`, evicting the coldest
    /// entry of the shard when full. Does not count as a hit or miss.
    /// Fills below the [`retire_below`](Self::retire_below) floor are
    /// dropped — a plan pinned to a superseded view racing a retirement
    /// must not resurrect dead generations.
    pub fn insert(&self, generation: u64, key: Vec<u8>, value: CachedGfu) {
        if generation < self.floor.load(Ordering::Acquire) {
            return;
        }
        let mut shard = self.shard(&key).lock();
        let tagged = tag(generation, &key);
        shard.stamp += 1;
        let stamp = shard.stamp;
        if let Some((_, old)) = shard.entries.get(&tagged) {
            let old = *old;
            shard.lru.remove(&old);
        } else if shard.entries.len() >= self.per_shard_capacity {
            if let Some((_, coldest)) = shard.lru.pop_first() {
                shard.entries.remove(&coldest);
            }
        }
        shard.lru.insert(stamp, tagged.clone());
        shard.entries.insert(tagged, (value, stamp));
    }

    /// Drop every entry whose generation is below `generation`.
    ///
    /// Called when the planner observes a committed view: all entries of
    /// superseded generations are dead weight (no future plan will pin a
    /// view that old), and on a long-running server they would otherwise
    /// crowd out live entries until LRU pressure happened to evict them.
    /// Entries *at* `generation` (and pending ones above it) survive.
    /// Idempotent and monotonic: a floor at or below a previous call is
    /// a no-op.
    pub fn retire_below(&self, generation: u64) {
        let prev = self.floor.fetch_max(generation, Ordering::AcqRel);
        if prev >= generation {
            return;
        }
        for shard in &self.shards {
            let mut shard = shard.lock();
            let dead: Vec<(Vec<u8>, u64)> = shard
                .entries
                .iter()
                .filter(|(tagged, _)| {
                    tagged
                        .first_chunk::<8>()
                        .is_some_and(|g| u64::from_be_bytes(*g) < generation)
                })
                .map(|(tagged, (_, stamp))| (tagged.clone(), *stamp))
                .collect();
            for (tagged, stamp) in dead {
                shard.entries.remove(&tagged);
                shard.lru.remove(&stamp);
            }
        }
    }

    /// The distinct generations with at least one live entry, sorted.
    /// Test/diagnostic helper for cache-occupancy assertions.
    pub fn live_generations(&self) -> Vec<u64> {
        let mut gens: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .entries
                    .keys()
                    .filter_map(|tagged| tagged.first_chunk::<8>().map(|g| u64::from_be_bytes(*g)))
                    .collect::<Vec<u64>>()
            })
            .collect();
        gens.sort_unstable();
        gens.dedup();
        gens
    }

    /// Cumulative probe counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries (all generations, all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for GfuHeaderCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("GfuHeaderCache")
            .field("entries", &self.len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(n: u64) -> CachedGfu {
        Some(Arc::new(GfuValue {
            header: vec![n as u8],
            slices: vec![],
            record_count: n,
        }))
    }

    #[test]
    fn insert_then_get_hits() {
        let cache = GfuHeaderCache::new(16);
        assert!(cache.get(0, b"k1").is_none());
        cache.insert(0, b"k1".to_vec(), value(7));
        let got = cache.get(0, b"k1").expect("hit");
        assert_eq!(got.unwrap().record_count, 7);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn negative_entries_are_hits() {
        let cache = GfuHeaderCache::new(16);
        cache.insert(0, b"absent".to_vec(), None);
        assert_eq!(cache.get(0, b"absent"), Some(None));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn generations_are_isolated() {
        let cache = GfuHeaderCache::new(16);
        cache.insert(3, b"k".to_vec(), value(1));
        assert!(cache.get(3, b"k").is_some());
        // The next generation sees nothing until its own fill lands…
        assert!(cache.get(4, b"k").is_none());
        cache.insert(4, b"k".to_vec(), value(2));
        // …and a reader still pinned to the old view keeps its entry.
        assert_eq!(cache.get(3, b"k").unwrap().unwrap().record_count, 1);
        assert_eq!(cache.get(4, b"k").unwrap().unwrap().record_count, 2);
    }

    #[test]
    fn lru_evicts_coldest() {
        // Single-entry shards: every insert into an occupied shard evicts.
        let cache = GfuHeaderCache::new(1);
        // Find two keys in the same shard by brute force.
        let base = b"a".to_vec();
        let mut other = None;
        for i in 0u32..1000 {
            let k = format!("probe-{i}").into_bytes();
            if std::ptr::eq(cache.shard(&k), cache.shard(&base)) {
                other = Some(k);
                break;
            }
        }
        let other = other.expect("some key shares a shard");
        cache.insert(0, base.clone(), value(1));
        cache.insert(0, other.clone(), value(2));
        assert!(cache.get(0, &base).is_none(), "coldest entry evicted");
        assert!(cache.get(0, &other).is_some());
    }

    #[test]
    fn touch_refreshes_lru_position() {
        let cache = GfuHeaderCache::new(1);
        let a = b"a".to_vec();
        let mut same_shard = Vec::new();
        for i in 0u32..2000 {
            let k = format!("probe-{i}").into_bytes();
            if std::ptr::eq(cache.shard(&k), cache.shard(&a)) {
                same_shard.push(k);
                if same_shard.len() == 2 {
                    break;
                }
            }
        }
        let [b, c] = <[Vec<u8>; 2]>::try_from(same_shard).expect("two keys share a shard");
        cache.insert(0, a.clone(), value(1));
        cache.insert(0, b.clone(), value(2)); // evicts a
        cache.get(0, &b); // touch b
        cache.insert(0, c.clone(), value(3)); // must evict... b is the only entry
        assert!(cache.get(0, &c).is_some());
    }

    #[test]
    fn stale_generations_age_out_under_pressure() {
        // One-entry shards again: a new generation's fill for the same
        // key evicts the old generation's entry rather than growing.
        let cache = GfuHeaderCache::new(1);
        cache.insert(1, b"k".to_vec(), value(1));
        cache.insert(2, b"k".to_vec(), value(2));
        assert!(cache.get(1, b"k").is_none(), "old generation evicted");
        assert_eq!(cache.get(2, b"k").unwrap().unwrap().record_count, 2);
    }

    #[test]
    fn retire_below_drops_only_dead_generations() {
        let cache = GfuHeaderCache::new(64);
        for generation in 1..=4u64 {
            for k in 0..5u32 {
                cache.insert(generation, k.to_be_bytes().to_vec(), value(generation));
            }
        }
        assert_eq!(cache.live_generations(), vec![1, 2, 3, 4]);
        cache.retire_below(3);
        assert_eq!(cache.live_generations(), vec![3, 4]);
        // Survivors still hit; retired generations are true misses.
        assert!(cache.get(3, &0u32.to_be_bytes()).is_some());
        assert!(cache.get(2, &0u32.to_be_bytes()).is_none());
        // Monotonic: a lower floor is a no-op.
        cache.retire_below(1);
        assert_eq!(cache.live_generations(), vec![3, 4]);
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = GfuHeaderCache::new(32);
        for i in 0..10_000u32 {
            cache.insert(0, i.to_be_bytes().to_vec(), value(i as u64));
        }
        assert!(cache.len() <= 32usize.div_ceil(SHARDS).max(1) * SHARDS);
    }
}
