//! The grid-file splitting policy (paper §4.2).
//!
//! Before constructing a DGFIndex the user specifies, per indexed
//! dimension, a minimum value and an interval size (Listing 3:
//! `IDXPROPERTIES ('A'='1_3', 'B'='11_2', …)`). The policy "standardizes"
//! a value to the left-closed right-open cell it falls into; the vector of
//! standardized coordinates is the GFUKey.
//!
//! Integer and date dimensions use exact integer arithmetic; float
//! dimensions standardize in `f64` (interval sizes like TPC-H's
//! `l_discount` 0.01 are exact enough at the scales involved, and the
//! boundary region is always re-checked against the exact predicate, so a
//! borderline cell assignment can never change query results).

use std::ops::Bound;

use dgf_common::codec::{self, Decoder};
use dgf_common::{DgfError, Result, Value, ValueType};
use dgf_query::ColumnRange;

/// Scale of one dimension: minimum + interval in the dimension's units.
#[derive(Debug, Clone, PartialEq)]
pub enum DimScale {
    /// Integer or date dimension (dates are epoch days; "1 day" ⇒ 1).
    Int {
        /// Left edge of cell 0.
        min: i64,
        /// Cell width (> 0).
        interval: i64,
    },
    /// Floating-point dimension.
    Float {
        /// Left edge of cell 0.
        min: f64,
        /// Cell width (> 0).
        interval: f64,
    },
}

/// Policy for one indexed dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DimPolicy {
    /// Column name in the base table.
    pub name: String,
    /// Column type (must match the schema at bind time).
    pub vtype: ValueType,
    /// Standardization scale.
    pub scale: DimScale,
}

impl DimPolicy {
    /// An integer dimension.
    pub fn int(name: impl Into<String>, min: i64, interval: i64) -> DimPolicy {
        assert!(interval > 0, "interval must be positive");
        DimPolicy {
            name: name.into(),
            vtype: ValueType::Int,
            scale: DimScale::Int { min, interval },
        }
    }

    /// A date dimension; `interval_days` is the paper's "unit of interval"
    /// for date types.
    pub fn date(name: impl Into<String>, min_day: i64, interval_days: i64) -> DimPolicy {
        assert!(interval_days > 0, "interval must be positive");
        DimPolicy {
            name: name.into(),
            vtype: ValueType::Date,
            scale: DimScale::Int {
                min: min_day,
                interval: interval_days,
            },
        }
    }

    /// A float dimension.
    pub fn float(name: impl Into<String>, min: f64, interval: f64) -> DimPolicy {
        assert!(interval > 0.0, "interval must be positive");
        DimPolicy {
            name: name.into(),
            vtype: ValueType::Float,
            scale: DimScale::Float { min, interval },
        }
    }

    /// The paper's `standard(value)`: the cell index whose left-closed
    /// right-open interval contains `value`.
    pub fn cell_of(&self, v: &Value) -> Result<i64> {
        if v.is_null() {
            return Err(DgfError::Index(format!(
                "NULL in index dimension {:?}",
                self.name
            )));
        }
        match &self.scale {
            DimScale::Int { min, interval } => {
                let x = v.as_i64()?;
                Ok((x - min).div_euclid(*interval))
            }
            DimScale::Float { min, interval } => {
                let x = v.as_f64()?;
                Ok(((x - min) / interval).floor() as i64)
            }
        }
    }

    /// Left edge of cell `c`, as a value of the dimension's type.
    pub fn cell_low(&self, c: i64) -> Value {
        match &self.scale {
            DimScale::Int { min, interval } => {
                let x = min + c * interval;
                match self.vtype {
                    ValueType::Date => Value::Date(x),
                    _ => Value::Int(x),
                }
            }
            DimScale::Float { min, interval } => Value::Float(min + c as f64 * interval),
        }
    }

    /// Exclusive right edge of cell `c` (= left edge of cell `c + 1`).
    pub fn cell_high(&self, c: i64) -> Value {
        self.cell_low(c + 1)
    }

    /// The inclusive cell span `[lo, hi]` that may contain values matching
    /// `range`, and whether the range fully covers the edge cells.
    ///
    /// Unbounded sides are clamped to the supplied data extent
    /// `(min_cell, max_cell)` and count as covered — every value ever
    /// indexed lies inside the extent (paper §5.3.4: missing dimensions
    /// are completed from the stored min/max).
    pub fn cell_span(
        &self,
        range: Option<&ColumnRange>,
        extent: (i64, i64),
    ) -> Result<DimSpan> {
        let (ext_lo, ext_hi) = extent;
        let Some(range) = range else {
            return Ok(DimSpan {
                lo: ext_lo,
                hi: ext_hi,
                lo_covered: true,
                hi_covered: true,
            });
        };
        // On integer/date scales the bound kinds are interconvertible
        // (`x > v` ≡ `x >= v+1`, `x <= v` ≡ `x < v+1`); canonicalizing to
        // the closed-low/open-high form lets aligned point and inclusive
        // ranges be recognized as fully covering their cells.
        let is_integral = matches!(self.scale, DimScale::Int { .. });
        let low = match (&range.low, is_integral) {
            (Bound::Excluded(v), true) => {
                Bound::Included(bump_integral(self.vtype, v.as_i64()?, 1))
            }
            (other, _) => other.clone(),
        };
        let high = match (&range.high, is_integral) {
            (Bound::Included(v), true) => {
                Bound::Excluded(bump_integral(self.vtype, v.as_i64()?, 1))
            }
            (other, _) => other.clone(),
        };
        // Lower side.
        let (mut lo, mut lo_covered) = match &low {
            Bound::Unbounded => (ext_lo, true),
            Bound::Included(v) => {
                let c = self.cell_of(v)?;
                // Covered iff the bound sits exactly on the cell edge.
                (c, *v == self.cell_low(c))
            }
            Bound::Excluded(v) => {
                let c = self.cell_of(v)?;
                (c, false)
            }
        };
        // Upper side.
        let (mut hi, mut hi_covered) = match &high {
            Bound::Unbounded => (ext_hi, true),
            Bound::Included(v) => {
                let c = self.cell_of(v)?;
                (c, false) // an inclusive float bound never covers its cell
            }
            Bound::Excluded(v) => {
                let c = self.cell_of(v)?;
                if *v == self.cell_low(c) {
                    // `x < cell edge`: the edge cell itself is excluded.
                    (c - 1, true)
                } else {
                    (c, false)
                }
            }
        };
        // Clamp to the data extent; clamped sides are covered by definition.
        if lo < ext_lo {
            lo = ext_lo;
            lo_covered = true;
        }
        if hi > ext_hi {
            hi = ext_hi;
            hi_covered = true;
        }
        Ok(DimSpan {
            lo,
            hi,
            lo_covered,
            hi_covered,
        })
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_str(buf, &self.name);
        match (&self.scale, self.vtype) {
            (DimScale::Int { min, interval }, t) => {
                buf.push(if t == ValueType::Date { 1 } else { 0 });
                codec::put_i64(buf, *min);
                codec::put_i64(buf, *interval);
            }
            (DimScale::Float { min, interval }, _) => {
                buf.push(2);
                codec::put_f64(buf, *min);
                codec::put_f64(buf, *interval);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<DimPolicy> {
        let name = dec.str()?.to_owned();
        Ok(match dec.u8()? {
            0 => DimPolicy::int(name, dec.i64()?, dec.i64()?),
            1 => DimPolicy::date(name, dec.i64()?, dec.i64()?),
            2 => DimPolicy::float(name, dec.f64()?, dec.f64()?),
            t => return Err(DgfError::Corrupt(format!("unknown dim policy tag {t}"))),
        })
    }
}

/// `v + delta` as a value of the given integral type.
fn bump_integral(vtype: ValueType, v: i64, delta: i64) -> Value {
    let x = v.saturating_add(delta);
    match vtype {
        ValueType::Date => Value::Date(x),
        _ => Value::Int(x),
    }
}

/// The cell span of a query range on one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimSpan {
    /// First cell (inclusive).
    pub lo: i64,
    /// Last cell (inclusive). `hi < lo` means the span is empty.
    pub hi: i64,
    /// Whether the first cell is entirely inside the query range.
    pub lo_covered: bool,
    /// Whether the last cell is entirely inside the query range.
    pub hi_covered: bool,
}

impl DimSpan {
    /// Whether the span contains no cells.
    pub fn is_empty(&self) -> bool {
        self.hi < self.lo
    }

    /// Whether cell `c` of this span is fully covered by the query range.
    pub fn covered(&self, c: i64) -> bool {
        (c > self.lo || self.lo_covered) && (c < self.hi || self.hi_covered)
    }
}

/// The full grid: an ordered list of dimension policies.
#[derive(Debug, Clone, PartialEq)]
pub struct SplittingPolicy {
    dims: Vec<DimPolicy>,
}

impl SplittingPolicy {
    /// Build a policy; at least one dimension, unique names.
    pub fn new(dims: Vec<DimPolicy>) -> Result<SplittingPolicy> {
        if dims.is_empty() {
            return Err(DgfError::Index("a grid needs at least one dimension".into()));
        }
        for (i, d) in dims.iter().enumerate() {
            if dims[..i].iter().any(|e| e.name == d.name) {
                return Err(DgfError::Index(format!("duplicate dimension {:?}", d.name)));
            }
        }
        Ok(SplittingPolicy { dims })
    }

    /// The dimensions, in key order.
    pub fn dims(&self) -> &[DimPolicy] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Dimension names in key order.
    pub fn dim_names(&self) -> Vec<&str> {
        self.dims.iter().map(|d| d.name.as_str()).collect()
    }

    /// Serialize for the key-value store's metadata entry.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, self.dims.len() as u32);
        for d in &self.dims {
            d.encode(&mut buf);
        }
        buf
    }

    /// Deserialize.
    pub fn decode(bytes: &[u8]) -> Result<SplittingPolicy> {
        let mut dec = Decoder::new(bytes);
        let n = dec.u32()? as usize;
        let mut dims = Vec::with_capacity(n);
        for _ in 0..n {
            dims.push(DimPolicy::decode(&mut dec)?);
        }
        SplittingPolicy::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_standardization_matches_paper_example() {
        // Paper Figure 5: A divided with min 1, interval 3: [1,4), [4,7)…
        let d = DimPolicy::int("A", 1, 3);
        assert_eq!(d.cell_of(&Value::Int(1)).unwrap(), 0);
        assert_eq!(d.cell_of(&Value::Int(3)).unwrap(), 0);
        assert_eq!(d.cell_of(&Value::Int(4)).unwrap(), 1);
        assert_eq!(d.cell_of(&Value::Int(7)).unwrap(), 2);
        assert_eq!(d.cell_low(2), Value::Int(7));
        assert_eq!(d.cell_high(2), Value::Int(10));
        // Values below min standardize to negative cells, not errors.
        assert_eq!(d.cell_of(&Value::Int(0)).unwrap(), -1);
    }

    #[test]
    fn float_standardization() {
        let d = DimPolicy::float("disc", 0.0, 0.01);
        assert_eq!(d.cell_of(&Value::Float(0.0)).unwrap(), 0);
        assert_eq!(d.cell_of(&Value::Float(0.045)).unwrap(), 4);
        assert_eq!(d.cell_low(4), Value::Float(0.04));
    }

    #[test]
    fn date_standardization() {
        let d = DimPolicy::date("ts", 15706, 1); // 2013-01-01, 1-day cells
        assert_eq!(d.cell_of(&Value::Date(15706)).unwrap(), 0);
        assert_eq!(d.cell_of(&Value::Date(15708)).unwrap(), 2);
        assert_eq!(d.cell_low(2), Value::Date(15708));
    }

    #[test]
    fn null_in_dimension_is_an_error() {
        let d = DimPolicy::int("A", 0, 1);
        assert!(d.cell_of(&Value::Null).is_err());
    }

    #[test]
    fn span_of_half_open_range_on_cell_edges_is_fully_covered() {
        let d = DimPolicy::int("A", 0, 10);
        // [20, 50): cells 2,3,4, all covered.
        let r = ColumnRange::half_open(Value::Int(20), Value::Int(50));
        let s = d.cell_span(Some(&r), (0, 100)).unwrap();
        assert_eq!((s.lo, s.hi), (2, 4));
        assert!(s.lo_covered && s.hi_covered);
        assert!(s.covered(2) && s.covered(3) && s.covered(4));
    }

    #[test]
    fn span_of_misaligned_range_has_boundary_cells() {
        let d = DimPolicy::int("A", 0, 10);
        // [25, 45): cells 2..4; 2 and 4 are boundary, 3 is inner.
        let r = ColumnRange::half_open(Value::Int(25), Value::Int(45));
        let s = d.cell_span(Some(&r), (0, 100)).unwrap();
        assert_eq!((s.lo, s.hi), (2, 4));
        assert!(!s.covered(2));
        assert!(s.covered(3));
        assert!(!s.covered(4));
    }

    #[test]
    fn span_with_exclusive_bounds() {
        let d = DimPolicy::int("A", 0, 10);
        // (20, 40): cell 2 is boundary (20 itself excluded), cell 3 covered
        // up to 40? No: x < 40 exclusive on edge 40 ⇒ cell 3 covered, hi=3.
        let r = ColumnRange::open(Value::Int(20), Value::Int(40));
        let s = d.cell_span(Some(&r), (0, 100)).unwrap();
        assert_eq!((s.lo, s.hi), (2, 3));
        assert!(!s.covered(2));
        assert!(s.covered(3));
    }

    #[test]
    fn missing_range_spans_full_extent_covered() {
        let d = DimPolicy::int("A", 0, 10);
        let s = d.cell_span(None, (3, 9)).unwrap();
        assert_eq!((s.lo, s.hi), (3, 9));
        assert!(s.covered(3) && s.covered(9));
    }

    #[test]
    fn span_clamps_to_extent() {
        let d = DimPolicy::int("A", 0, 10);
        let r = ColumnRange::half_open(Value::Int(-100), Value::Int(1000));
        let s = d.cell_span(Some(&r), (2, 5)).unwrap();
        assert_eq!((s.lo, s.hi), (2, 5));
        assert!(s.lo_covered && s.hi_covered);
    }

    #[test]
    fn empty_span_when_range_below_extent() {
        let d = DimPolicy::int("A", 0, 10);
        let r = ColumnRange::half_open(Value::Int(0), Value::Int(10));
        let s = d.cell_span(Some(&r), (5, 9)).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn point_query_is_single_boundary_cell() {
        let d = DimPolicy::int("A", 0, 10);
        let r = ColumnRange::eq(Value::Int(25));
        let s = d.cell_span(Some(&r), (0, 100)).unwrap();
        assert_eq!((s.lo, s.hi), (2, 2));
        assert!(!s.covered(2)); // the paper: point queries have no inner GFU
    }

    #[test]
    fn integral_point_on_unit_cell_is_fully_covered() {
        // regionId with interval 1: `region = 10` covers cell 10 exactly
        // (x <= 10 ≡ x < 11 on integers), so the cell is inner and the
        // pre-computed header can answer it (Figure 17's query shape).
        let d = DimPolicy::int("region_id", 0, 1);
        let r = ColumnRange::eq(Value::Int(10));
        let s = d.cell_span(Some(&r), (0, 20)).unwrap();
        assert_eq!((s.lo, s.hi), (10, 10));
        assert!(s.covered(10));
        // Same for dates with 1-day cells.
        let d = DimPolicy::date("ts", 15706, 1);
        let r = ColumnRange::eq(Value::Date(15710));
        let s = d.cell_span(Some(&r), (0, 30)).unwrap();
        assert!(s.covered(4));
        // Exclusive integral low bound: x > 19 ≡ x >= 20 — cell [10,20)
        // holds no matching integers, so the span starts at cell 2,
        // which is fully covered.
        let d = DimPolicy::int("A", 0, 10);
        let r = ColumnRange::open(Value::Int(19), Value::Int(40));
        let s = d.cell_span(Some(&r), (0, 100)).unwrap();
        assert_eq!((s.lo, s.hi), (2, 3));
        assert!(s.covered(2)); // [20,30) fully inside (20..=39)
        assert!(s.covered(3));
        // Float inclusive bounds stay boundary (no successor value).
        let d = DimPolicy::float("f", 0.0, 1.0);
        let r = ColumnRange::eq(Value::Float(3.0));
        let s = d.cell_span(Some(&r), (0, 10)).unwrap();
        assert!(!s.covered(3));
    }

    #[test]
    fn policy_encode_decode() {
        let p = SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, 1000),
            DimPolicy::date("ts", 15706, 1),
            DimPolicy::float("power", 0.0, 0.5),
        ])
        .unwrap();
        let decoded = SplittingPolicy::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn policy_rejects_empty_and_duplicates() {
        assert!(SplittingPolicy::new(vec![]).is_err());
        assert!(SplittingPolicy::new(vec![
            DimPolicy::int("a", 0, 1),
            DimPolicy::int("a", 0, 2),
        ])
        .is_err());
    }
}
