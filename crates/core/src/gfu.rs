//! Grid File Units: keys, values, and their key-value store encoding.
//!
//! A GFU is one grid cell (paper §4.1). Its key is the standardized
//! coordinate vector (the paper prints it as `"7_13"`; here it is the
//! order-preserving binary encoding of the cell indexes, so time-prefix
//! range scans work). Its value is the **header** (pre-computed additive
//! aggregate states) plus the **locations of its Slices** — contiguous
//! byte ranges of reorganized data files holding exactly this cell's
//! records. A freshly built index has one slice per GFU; incremental
//! appends (paper §4.2, time-extension) add more.

use dgf_common::codec::{self, Decoder};
use dgf_common::{DgfError, Result};

/// Key prefix for GFU entries in the key-value store.
pub const GFU_PREFIX: &[u8] = b"g:";
/// Key of the persisted splitting policy.
pub const META_POLICY_KEY: &[u8] = b"m:policy";
/// Key of the persisted per-dimension cell extents.
pub const META_EXTENT_KEY: &[u8] = b"m:extent";
/// Key of the persisted pre-computed aggregate list.
pub const META_AGGS_KEY: &[u8] = b"m:aggs";
/// Key of the persisted slice-placement policy.
pub const META_PLACEMENT_KEY: &[u8] = b"m:placement";
/// Key of the persisted count of indexed base-table files (staleness
/// detection: querying after un-indexed loads must fail loudly).
pub const META_FILES_KEY: &[u8] = b"m:files";
/// Key of the persisted ingest watermark: the highest streaming-ingest
/// batch sequence whose rows have been flushed into Slices. Advances
/// atomically with the flush transaction's commit (it rides the
/// manifest's precomputed meta puts), so WAL replay after a crash knows
/// exactly which batches are already indexed.
pub const META_INGEST_KEY: &[u8] = b"m:ingest";
/// Key of the persisted aggregate-pyramid height (absent on stores
/// built without a pyramid — legacy stores stay legacy, because absent
/// ancestor nodes would silently read as "no data"). One byte: the
/// number of levels above the `g:` leaves (see [`crate::pyramid`]).
pub const META_PYRAMID_KEY: &[u8] = b"m:pyramid";
/// Key of the deferred file-reclamation list: data files retired by a
/// maintenance compaction that are no longer referenced by the current
/// [`ReadView`](crate::view::ReadView) but may still be pinned by
/// in-flight readers holding the previous view. The maintenance daemon
/// deletes them at the *start of its next run* (one full round of
/// grace), so a reader never loses a file out from under a pinned view.
pub const META_GC_KEY: &[u8] = b"m:gc";
/// Key of the persisted [`ReadView`](crate::view::ReadView): the
/// committed snapshot (generation, extents, split list, watermark) that
/// query planning pins with a single `get`. Published inside the commit
/// transaction so it can never disagree with the other meta keys.
pub const META_VIEW_KEY: &[u8] = b"m:view";

/// A GFU key: the cell index per dimension, in policy order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GfuKey {
    /// Standardized coordinates.
    pub cells: Vec<i64>,
}

impl GfuKey {
    /// Construct from coordinates.
    pub fn new(cells: Vec<i64>) -> GfuKey {
        GfuKey { cells }
    }

    /// Order-preserving store key: `g:` + big-endian sign-flipped cells.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(GFU_PREFIX.len() + self.cells.len() * 8);
        buf.extend_from_slice(GFU_PREFIX);
        for c in &self.cells {
            codec::encode_key_i64(&mut buf, *c);
        }
        buf
    }

    /// Decode a store key produced by [`encode`](Self::encode).
    pub fn decode(mut bytes: &[u8], arity: usize) -> Result<GfuKey> {
        bytes = bytes
            .strip_prefix(GFU_PREFIX)
            .ok_or_else(|| DgfError::Corrupt("GFU key missing prefix".into()))?;
        let mut cells = Vec::with_capacity(arity);
        for _ in 0..arity {
            let (c, rest) = codec::decode_key_i64(bytes)?;
            cells.push(c);
            bytes = rest;
        }
        if !bytes.is_empty() {
            return Err(DgfError::Corrupt("GFU key has trailing bytes".into()));
        }
        Ok(GfuKey { cells })
    }

    /// The paper's display form, e.g. `7_13`.
    pub fn display(&self) -> String {
        self.cells
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("_")
    }
}

/// Location of one Slice: a half-open byte range of a data file.
///
/// The paper's Figure 6 records inclusive `[start, end]` where `end` is
/// the offset of the slice's last record; this codebase uses half-open
/// `[start, end)` byte ranges, which compose directly with split clipping
/// (see `DESIGN.md` §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceLoc {
    /// Data file path.
    pub file: String,
    /// First byte.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

impl SliceLoc {
    /// Construct a slice location.
    pub fn new(file: impl Into<String>, start: u64, end: u64) -> SliceLoc {
        SliceLoc {
            file: file.into(),
            start,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The value stored per GFU.
#[derive(Debug, Clone, PartialEq)]
pub struct GfuValue {
    /// Encoded aggregate states (see `dgf_query::AggSet::encode_states`)
    /// for the index's pre-computed aggregate list.
    pub header: Vec<u8>,
    /// Slices holding this cell's records (one per construction run that
    /// saw the cell).
    pub slices: Vec<SliceLoc>,
    /// Number of records in the cell (used for reporting and planning).
    pub record_count: u64,
}

impl GfuValue {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_bytes(&mut buf, &self.header);
        codec::put_u64(&mut buf, self.record_count);
        codec::put_u32(&mut buf, self.slices.len() as u32);
        for s in &self.slices {
            codec::put_str(&mut buf, &s.file);
            codec::put_u64(&mut buf, s.start);
            codec::put_u64(&mut buf, s.end);
        }
        buf
    }

    /// Deserialize.
    pub fn decode(bytes: &[u8]) -> Result<GfuValue> {
        let mut dec = Decoder::new(bytes);
        let header = dec.bytes()?.to_vec();
        let record_count = dec.u64()?;
        let n = dec.u32()? as usize;
        let mut slices = Vec::with_capacity(n);
        for _ in 0..n {
            let file = dec.str()?.to_owned();
            let start = dec.u64()?;
            let end = dec.u64()?;
            slices.push(SliceLoc { file, start, end });
        }
        Ok(GfuValue {
            header,
            slices,
            record_count,
        })
    }
}

/// Per-dimension cell extents `[min_cell, max_cell]` observed in the data;
/// persisted so partially-specified queries can complete missing
/// dimensions (paper §5.3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extents {
    /// One inclusive `(min, max)` pair per dimension, in policy order.
    pub dims: Vec<(i64, i64)>,
}

impl Extents {
    /// Extents covering nothing (before any data is indexed).
    pub fn empty(arity: usize) -> Extents {
        Extents {
            dims: vec![(i64::MAX, i64::MIN); arity],
        }
    }

    /// Fold one observed key into the extents.
    pub fn observe(&mut self, key: &GfuKey) {
        for (d, c) in key.cells.iter().enumerate() {
            let (lo, hi) = &mut self.dims[d];
            *lo = (*lo).min(*c);
            *hi = (*hi).max(*c);
        }
    }

    /// Merge extents from another construction run.
    pub fn merge(&mut self, other: &Extents) {
        for (d, (olo, ohi)) in other.dims.iter().enumerate() {
            let (lo, hi) = &mut self.dims[d];
            *lo = (*lo).min(*olo);
            *hi = (*hi).max(*ohi);
        }
    }

    /// Whether any data has been observed.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|(lo, hi)| lo > hi)
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, self.dims.len() as u32);
        for (lo, hi) in &self.dims {
            codec::put_i64(&mut buf, *lo);
            codec::put_i64(&mut buf, *hi);
        }
        buf
    }

    /// Deserialize.
    pub fn decode(bytes: &[u8]) -> Result<Extents> {
        let mut dec = Decoder::new(bytes);
        let n = dec.u32()? as usize;
        let mut dims = Vec::with_capacity(n);
        for _ in 0..n {
            dims.push((dec.i64()?, dec.i64()?));
        }
        Ok(Extents { dims })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encode_is_order_preserving_lexicographically() {
        let keys = [
            GfuKey::new(vec![-5, 0]),
            GfuKey::new(vec![-5, 3]),
            GfuKey::new(vec![0, -10]),
            GfuKey::new(vec![0, 0]),
            GfuKey::new(vec![7, 13]),
        ];
        let encoded: Vec<Vec<u8>> = keys.iter().map(|k| k.encode()).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (k, e) in keys.iter().zip(&encoded) {
            assert_eq!(&GfuKey::decode(e, 2).unwrap(), k);
        }
    }

    #[test]
    fn key_display_matches_paper_form() {
        assert_eq!(GfuKey::new(vec![7, 13]).display(), "7_13");
    }

    #[test]
    fn key_decode_validates() {
        let k = GfuKey::new(vec![1, 2]).encode();
        assert!(GfuKey::decode(&k, 3).is_err()); // wrong arity
        assert!(GfuKey::decode(b"x:junk", 1).is_err()); // wrong prefix
    }

    #[test]
    fn value_round_trip() {
        let v = GfuValue {
            header: vec![1, 2, 3],
            slices: vec![
                SliceLoc::new("/idx/part-r-0", 0, 90),
                SliceLoc::new("/idx/part-r-1", 1000, 1450),
            ],
            record_count: 60,
        };
        assert_eq!(GfuValue::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn empty_value_round_trip() {
        let v = GfuValue {
            header: vec![],
            slices: vec![],
            record_count: 0,
        };
        assert_eq!(GfuValue::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn extents_observe_and_merge() {
        let mut e = Extents::empty(2);
        assert!(e.is_empty());
        e.observe(&GfuKey::new(vec![3, -1]));
        e.observe(&GfuKey::new(vec![1, 5]));
        assert_eq!(e.dims, vec![(1, 3), (-1, 5)]);
        let mut f = Extents::empty(2);
        f.observe(&GfuKey::new(vec![10, 0]));
        e.merge(&f);
        assert_eq!(e.dims, vec![(1, 10), (-1, 5)]);
        assert!(!e.is_empty());
        assert_eq!(Extents::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn slice_len() {
        let s = SliceLoc::new("/f", 10, 25);
        assert_eq!(s.len(), 15);
        assert!(!s.is_empty());
        assert!(SliceLoc::new("/f", 5, 5).is_empty());
    }
}
