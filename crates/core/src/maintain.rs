//! Background maintenance: delta compaction, deferred file reclamation,
//! key-value log compaction, and online grid adaptation (DESIGN.md §16).
//!
//! Streaming ingest extends the grid one small delta file per flush, so a
//! long-running index accumulates slices scattered across many files:
//! boundary scans lose locality, the `(generation, gfu)` header cache
//! fills with dead epochs, and the append-only KV log never reclaims
//! overwritten values unless someone calls `flush()`. The [`Maintainer`]
//! runs all four counter-measures behind the same staged-commit protocol
//! the build and append paths use ([`crate::txn`]), so every
//! reorganization publishes through one `m:view` put — readers never
//! block, and answers stay bit-identical under any maintenance schedule.
//!
//! **Compaction** is pure data movement: the slices of every GFU touched
//! by the smallest delta files are rewritten contiguously into one fresh
//! file (per-GFU row order preserved), and the GFU value's header and
//! record count are copied **verbatim** — re-folding the aggregates
//! would change the float summation order and thus the low bits of
//! boundary sums, which the equivalence harness would catch. Replaced
//! files are not deleted at commit: they join the `m:gc` deferred list
//! and are reclaimed at the *start of the next run*, giving readers
//! pinned to the previous view one full round of grace.
//!
//! **Adaptation** consumes the planner's [`CellHeat`] boundary counters:
//! a grid whose cells are too coarse (records per cell above
//! [`MaintenanceConfig::split_records_per_cell`]) halves the interval of
//! the *hottest* boundary dimension; one too fine (below
//! [`MaintenanceConfig::merge_records_per_cell`]) doubles the coldest.
//! The rewrite re-cells every record under the new policy in a single
//! transaction whose manifest also *retires* the old-granularity keys
//! (see [`crate::txn::TxnManifest::deletes`]), and the new policy rides
//! the published [`ReadView`](crate::view::ReadView) so a pinned reader
//! can never pair one epoch's extents with another's cell geometry.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgf_common::{format_row, DgfError, Result};
use dgf_format::{coalesce_ranges, is_sidecar_path, sidecar_path, ByteRange, FileFormat};
use dgf_hive::{open_input, ScanInput};

use crate::gfu::{GfuValue, GFU_PREFIX, META_EXTENT_KEY, META_GC_KEY};
use crate::index::{encode_gc_list, DgfIndex, RegridSpec, SliceWriter};
use crate::policy::{DimPolicy, DimScale, SplittingPolicy};
use crate::txn::{stage_key, TxnManifest, TxnState, TXN_MANIFEST_KEY};
use crate::view::ReadView;
use crate::Extents;

/// Planner-fed per-dimension boundary-heat counters.
///
/// Every time plan assembly classifies a span edge on dimension `d` as
/// *uncovered* (a boundary cell whose records must be scanned and
/// re-filtered), it calls [`record`](Self::record). The counters are the
/// maintenance daemon's signal for which dimension's granularity is
/// mispriced: the hottest dimension produces the most boundary scans and
/// benefits most from finer cells.
#[derive(Debug)]
pub struct CellHeat {
    dims: Vec<AtomicU64>,
}

impl CellHeat {
    /// Zeroed counters for an `arity`-dimensional grid.
    pub(crate) fn new(arity: usize) -> CellHeat {
        CellHeat {
            dims: (0..arity).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Count one boundary-cell scan attributed to dimension `dim`.
    /// Out-of-range dimensions are ignored (a pinned view may carry a
    /// policy of different arity than the live grid mid-regrid).
    pub fn record(&self, dim: usize) {
        if let Some(c) = self.dims.get(dim) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current per-dimension counts, in policy order.
    pub fn snapshot(&self) -> Vec<u64> {
        self.dims.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Read and reset the counters (the maintainer consumes each epoch
    /// of heat exactly once).
    pub fn take(&self) -> Vec<u64> {
        self.dims.iter().map(|c| c.swap(0, Ordering::Relaxed)).collect()
    }
}

/// Tuning knobs for one [`Maintainer`].
pub struct MaintenanceConfig {
    /// Maximum number of live data files before compaction triggers.
    /// When the count exceeds the budget, the smallest files (and every
    /// GFU referencing them) are compacted so the post-commit count is
    /// back within it.
    pub delta_file_budget: usize,
    /// Called (when set) before compaction to drain any buffered ingest
    /// state into slices — returns the number of batches flushed. A hook
    /// rather than a direct dependency so `dgf-core` stays below
    /// `dgf-ingest` in the crate graph.
    #[allow(clippy::type_complexity)]
    pub flush_hook: Option<Box<dyn Fn() -> Result<u64> + Send + Sync>>,
    /// Whether grid adaptation (re-split/merge + full rewrite) may run.
    pub adapt: bool,
    /// Mean records per occupied cell above which the hottest boundary
    /// dimension's interval is halved.
    pub split_records_per_cell: u64,
    /// Mean records per occupied cell below which the coldest boundary
    /// dimension's interval is doubled. `0` disables merging.
    pub merge_records_per_cell: u64,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            delta_file_budget: 8,
            flush_hook: None,
            adapt: false,
            split_records_per_cell: 4096,
            merge_records_per_cell: 0,
        }
    }
}

/// What one [`Maintainer::run_once`] pass did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Files (plus their sidecars) reclaimed from the deferred list.
    pub reclaimed_files: usize,
    /// Ingest batches drained by the flush hook.
    pub flushed_batches: u64,
    /// Delta files fed into this pass's compaction (0 = under budget).
    pub compacted_files: usize,
    /// GFUs whose slices were rewritten contiguously.
    pub compacted_gfus: usize,
    /// Bytes reclaimed by key-value store log compaction.
    pub kv_reclaimed_bytes: u64,
    /// Dimension whose interval the adaptation pass changed, with the
    /// new interval's description (`None` = grid left alone).
    pub adapted: Option<String>,
}

/// The background maintenance daemon (one pass at a time; the index is a
/// single-writer structure, so the caller must not run maintenance
/// concurrently with builds, appends, or ingest flushes).
pub struct Maintainer {
    index: Arc<DgfIndex>,
    config: MaintenanceConfig,
}

impl Maintainer {
    /// Wrap `index` with the given tuning.
    pub fn new(index: Arc<DgfIndex>, config: MaintenanceConfig) -> Maintainer {
        Maintainer { index, config }
    }

    /// The wrapped index.
    pub fn index(&self) -> &Arc<DgfIndex> {
        &self.index
    }

    /// One full maintenance pass: reclaim the previous round's retired
    /// files, drain ingest, compact deltas back within budget, compact
    /// the key-value log, and (when enabled) adapt the grid.
    pub fn run_once(&self) -> Result<MaintenanceReport> {
        let mut report = MaintenanceReport {
            reclaimed_files: self.reclaim()?,
            ..Default::default()
        };
        if let Some(hook) = &self.config.flush_hook {
            report.flushed_batches = hook()?;
        }
        if self.index.kv_get(TXN_MANIFEST_KEY)?.is_some() {
            return Err(DgfError::Index(
                "maintenance requires a clean store: an in-flight transaction manifest \
                 exists (run recovery first)"
                    .into(),
            ));
        }
        let (files, gfus) = self.compact()?;
        report.compacted_files = files;
        report.compacted_gfus = gfus;
        report.kv_reclaimed_bytes = self.index.kv.maintain()?;
        if self.config.adapt {
            report.adapted = self.adapt()?;
        }
        Ok(report)
    }

    /// Delete every file on the deferred-reclamation list (`m:gc`) along
    /// with its sidecar twin, then clear the list. The files were
    /// retired by a *previous* maintenance transaction, so any reader
    /// still pinned to the view that referenced them has had one full
    /// maintenance interval to finish. Idempotent under crashes: a file
    /// already gone is skipped, and the list is only cleared after every
    /// deletion succeeded.
    fn reclaim(&self) -> Result<usize> {
        let gc = self.index.gc_list()?;
        if gc.is_empty() {
            return Ok(0);
        }
        let hdfs = &self.index.ctx.hdfs;
        for path in &gc {
            if hdfs.file_exists(path) {
                hdfs.delete_file(path)?;
            }
            let sc = sidecar_path(path);
            if hdfs.file_exists(&sc) {
                hdfs.delete_file(&sc)?;
            }
        }
        self.index.crash_point("maint.gc-swept")?;
        self.index.put_gc_list(&[])?;
        Ok(gc.len())
    }

    /// The live (non-sidecar, non-retired) data files of the index.
    fn live_data_files(&self) -> Result<Vec<(String, u64)>> {
        let gc: HashSet<String> = self.index.gc_list()?.into_iter().collect();
        let mut files: Vec<(String, u64)> = self
            .index
            .ctx
            .hdfs
            .list_files(&self.index.data.location)
            .into_iter()
            .filter(|(p, _)| !is_sidecar_path(p) && !gc.contains(p))
            .collect();
        files.sort();
        files.dedup();
        Ok(files)
    }

    /// Delta compaction: when the live data-file count exceeds the
    /// budget, rewrite the slices of every GFU referencing the smallest
    /// files into one fresh contiguous file. Pure data movement — see
    /// the module docs for why headers are copied verbatim — published
    /// through the standard staged-commit transaction.
    fn compact(&self) -> Result<(usize, usize)> {
        let index = &*self.index;
        let files = self.live_data_files()?;
        let budget = self.config.delta_file_budget.max(1);
        if files.len() <= budget {
            return Ok((0, 0));
        }
        // Pick the k smallest files so the post-commit count (n - k + 1,
        // or lower if other files are fully absorbed) is within budget.
        let k = files.len() - budget + 1;
        let mut by_size = files.clone();
        by_size.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let selected: HashSet<String> = by_size.iter().take(k).map(|(p, _)| p.clone()).collect();

        // Affected = every GFU with at least one slice in a selected
        // file. The KV prefix scan is key-ordered, so the rewrite lays
        // affected cells out in grid order.
        let pairs = index.kv_scan_prefix(GFU_PREFIX)?;
        let mut affected: Vec<(Vec<u8>, GfuValue)> = Vec::new();
        let mut refs: HashMap<String, Vec<usize>> = HashMap::new();
        let mut affected_idx: HashSet<usize> = HashSet::new();
        let mut decoded: Vec<(Vec<u8>, GfuValue)> = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            decoded.push((k, GfuValue::decode(&v)?));
        }
        for (i, (_, v)) in decoded.iter().enumerate() {
            for s in &v.slices {
                refs.entry(s.file.clone()).or_default().push(i);
                if selected.contains(&s.file) {
                    affected_idx.insert(i);
                }
            }
        }
        if affected_idx.is_empty() {
            return Ok((0, 0));
        }
        for (i, kv) in decoded.into_iter().enumerate() {
            if affected_idx.contains(&i) {
                affected.push(kv);
            }
        }
        // A file is retired when every GFU referencing it is being
        // rewritten (its remaining bytes serve no live slice). Selected
        // files are always retired; others may be absorbed for free.
        let retired: Vec<(String, u64)> = files
            .iter()
            .filter(|(p, _)| match refs.get(p) {
                Some(rs) => rs.iter().all(|i| affected_idx.contains(i)),
                None => false,
            })
            .cloned()
            .collect();

        let gen = index.next_generation();
        let staging_dir = index.staging_dir(gen);
        let manifest = TxnManifest::intent(gen, staging_dir.clone(), None);
        index.kv_put(TXN_MANIFEST_KEY, &manifest.encode())?;
        index.crash_point("maint.intent")?;

        // Rewrite ALL slices of each affected GFU, in stored slice order,
        // into one staged file: each GFU ends up with a single contiguous
        // slice holding exactly its old rows in their old order.
        let format = index.data.format;
        let path = format!("{staging_dir}/part-r-{gen:05}-00000");
        let final_path = format!("{}/part-r-{gen:05}-00000", index.data.location);
        let mut w = SliceWriter::create(&index.ctx.hdfs, &path, &index.data, format)?;
        let mut staged_keys: Vec<Vec<u8>> = Vec::new();
        for (key, value) in &affected {
            let start = w.offset();
            for slice in &value.slices {
                if slice.is_empty() {
                    continue;
                }
                let range = ByteRange::new(slice.start, slice.end);
                let input = match format {
                    FileFormat::Text => ScanInput::TextRanges {
                        path: slice.file.clone(),
                        ranges: vec![range],
                    },
                    FileFormat::RcFile => ScanInput::RcRanges {
                        path: slice.file.clone(),
                        ranges: vec![range],
                    },
                };
                let mut r = open_input(&index.ctx, &index.data, &input)?;
                while let Some(row) = r.next_row()? {
                    let line = format_row(&row);
                    w.write(&line, row)?;
                }
            }
            let end = w.end_slice()?;
            index.sync_point("maint.stage-cell");
            // Header and record count copied verbatim: compaction moves
            // bytes, it never re-aggregates.
            let compacted = GfuValue {
                header: value.header.clone(),
                slices: vec![crate::gfu::SliceLoc::new(final_path.clone(), start, end)],
                record_count: value.record_count,
            };
            let skey = stage_key(gen, key);
            index.kv_put(&skey, &compacted.encode())?;
            staged_keys.push(skey);
        }
        w.close()?;
        index.crash_point("maint.staged")?;

        // Post-commit state: same extents, same watermark, same grid —
        // only the file list and the affected GFU values change.
        let extents = match index.kv_get(META_EXTENT_KEY)? {
            Some(bytes) => Extents::decode(&bytes)?,
            None => Extents::empty(index.policy().arity()),
        };
        let retired_set: HashSet<&String> = retired.iter().map(|(p, _)| p).collect();
        let staged_files = index.ctx.hdfs.list_files(&staging_dir);
        let mut renames: Vec<(String, String)> = Vec::with_capacity(staged_files.len());
        let mut data_files: Vec<(String, u64)> = files
            .iter()
            .filter(|(p, _)| !retired_set.contains(p))
            .cloned()
            .collect();
        for (p, len) in staged_files {
            let name = p.rsplit('/').next().unwrap_or(&p).to_owned();
            let dest = format!("{}/{name}", index.data.location);
            if !is_sidecar_path(&dest) {
                data_files.push((dest.clone(), len));
            }
            renames.push((p, dest));
        }
        data_files.sort();
        data_files.dedup();
        let base_files = index.ctx.hdfs.list_files(&index.base.location).len() as u64;
        let watermark = index.ingest_watermark()?;
        let mut gc_after: Vec<String> = self.index.gc_list()?;
        gc_after.extend(retired.iter().map(|(p, _)| p.clone()));
        gc_after.sort();
        gc_after.dedup();

        let mut manifest = manifest;
        manifest.state = TxnState::Prepared;
        manifest.renames = renames;
        manifest.staged_keys = staged_keys;
        manifest.meta_puts = vec![(META_GC_KEY.to_vec(), encode_gc_list(&gc_after))];
        manifest.view = ReadView {
            generation: gen,
            pending: true,
            watermark,
            files: Some(base_files),
            extents,
            data_files: Some(data_files),
            policy: Some(index.policy().encode()),
            versioned: true,
        }
        .encode();
        index.kv_put(TXN_MANIFEST_KEY, &manifest.encode())?;
        index.crash_point("maint.prepared")?;

        // COMMIT POINT.
        manifest.state = TxnState::Committed;
        index.kv_put(TXN_MANIFEST_KEY, &manifest.encode())?;
        index.crash_point("maint.committed")?;

        DgfIndex::apply_committed(
            &index.ctx.hdfs,
            index.kv.as_ref(),
            index.retry,
            &manifest,
            index.fault_plan(),
        )?;
        index.crash_point("maint.applied")?;
        DgfIndex::cleanup_txn(&index.ctx.hdfs, index.kv.as_ref(), index.retry, &manifest)?;
        // Orphan any header-cache entries a racing plan stamped with this
        // generation before the commit (mirrors the append path's bump).
        index.bump_generation();
        Ok((retired.len(), affected.len()))
    }

    /// Decide and apply one grid adaptation, if warranted. Returns a
    /// human-readable description of the change, or `None`.
    fn adapt(&self) -> Result<Option<String>> {
        let index = &*self.index;
        let pairs = index.kv_scan_prefix(GFU_PREFIX)?;
        if pairs.is_empty() {
            return Ok(None);
        }
        let mut records: u64 = 0;
        for (_, v) in &pairs {
            records += GfuValue::decode(v)?.record_count;
        }
        let cells = pairs.len() as u64;
        let avg = records / cells.max(1);
        let heat = index.heat().take();
        let old = index.policy();
        let (dim, halve) = if avg > self.config.split_records_per_cell {
            // Hottest boundary dimension benefits most from finer cells.
            let dim = argmax(&heat);
            (dim, true)
        } else if self.config.merge_records_per_cell > 0
            && avg < self.config.merge_records_per_cell
            && cells > 1
        {
            let dim = argmin(&heat);
            (dim, false)
        } else {
            return Ok(None);
        };
        let Some(adapted) = adapt_dim(&old.dims()[dim], halve) else {
            return Ok(None);
        };
        let desc = format!(
            "{} {} → {}",
            adapted.name,
            scale_desc(&old.dims()[dim].scale),
            scale_desc(&adapted.scale)
        );
        let mut dims = old.dims().to_vec();
        dims[dim] = adapted;
        let policy = SplittingPolicy::new(dims)?;
        self.regrid_to(policy)?;
        Ok(Some(desc))
    }

    /// Rewrite the whole index under `policy` (interval-only adaptation:
    /// same dimensions, same types — only cell widths change). Exposed
    /// for tests and the CLI; [`run_once`](Self::run_once) reaches it
    /// through the heat-driven decision.
    pub fn regrid_to(&self, policy: SplittingPolicy) -> Result<()> {
        let index = &*self.index;
        let old = index.policy();
        if old.dim_names() != policy.dim_names() {
            return Err(DgfError::Index(
                "grid adaptation may only change intervals, not dimensions".into(),
            ));
        }
        if *old == policy {
            return Ok(());
        }
        let files = self.live_data_files()?;
        let policy = Arc::new(policy);
        let gen = index.next_generation();
        let manifest = TxnManifest::intent(gen, index.staging_dir(gen), None);
        index.kv_put(TXN_MANIFEST_KEY, &manifest.encode())?;
        index.crash_point("maint.regrid-intent")?;
        if files.is_empty() {
            // Nothing to rewrite: install the policy, then let the
            // empty-splits reorganize path persist it and retire the
            // transaction.
            index.install_policy(Arc::clone(&policy));
            index.reorganize(Vec::new(), index.data.format, None, None)?;
            index.bump_generation();
            return Ok(());
        }
        let splits = self.live_slice_splits()?;
        if splits.is_empty() {
            // Files on disk but no live slices: an empty grid. Same as
            // the no-files path; the dead files stay until a compaction
            // pass claims them.
            index.install_policy(Arc::clone(&policy));
            index.reorganize(Vec::new(), index.data.format, None, None)?;
            index.bump_generation();
            return Ok(());
        }
        let spec = RegridSpec {
            policy: Arc::clone(&policy),
            retire: files,
        };
        index.reorganize(splits, index.data.format, None, Some(&spec))?;
        index.install_policy(policy);
        index.bump_generation();
        Ok(())
    }
}

impl Maintainer {
    /// The live byte ranges of every data file, as one `FileSplit` per
    /// coalesced slice run of the committed GFU values.
    ///
    /// Whole-file splits would be wrong here: a file retained through a
    /// compaction (because an untouched GFU still references part of it)
    /// may hold *dead* byte ranges whose rows were already rewritten
    /// into the compacted file, and re-reading them would double-count
    /// those rows in the regridded index. Slice boundaries are line- and
    /// group-aligned, so slice-exact splits read exactly the live rows
    /// under the readers' Hadoop boundary rules.
    fn live_slice_splits(&self) -> Result<Vec<dgf_storage::FileSplit>> {
        let mut per_file: HashMap<String, Vec<ByteRange>> = HashMap::new();
        for (_, bytes) in self.index.kv_scan_prefix(GFU_PREFIX)? {
            let value = GfuValue::decode(&bytes)?;
            for s in &value.slices {
                per_file
                    .entry(s.file.clone())
                    .or_default()
                    .push(ByteRange::new(s.start, s.end));
            }
        }
        let mut paths: Vec<String> = per_file.keys().cloned().collect();
        paths.sort();
        let mut out = Vec::new();
        for path in paths {
            let ranges = per_file.remove(&path).unwrap_or_default();
            for r in coalesce_ranges(ranges) {
                out.push(dgf_storage::FileSplit::new(&path, r.start, r.end - r.start));
            }
        }
        Ok(out)
    }
}

/// Halve (`true`) or double (`false`) a dimension's interval; `None`
/// when the interval cannot move further in that direction.
fn adapt_dim(d: &DimPolicy, halve: bool) -> Option<DimPolicy> {
    let mut out = d.clone();
    out.scale = match &d.scale {
        DimScale::Int { min, interval } => {
            let interval = if halve {
                if *interval <= 1 {
                    return None;
                }
                (*interval / 2).max(1)
            } else {
                interval.checked_mul(2)?
            };
            DimScale::Int {
                min: *min,
                interval,
            }
        }
        DimScale::Float { min, interval } => {
            let interval = if halve { interval / 2.0 } else { interval * 2.0 };
            if !interval.is_finite() || interval <= 0.0 {
                return None;
            }
            DimScale::Float {
                min: *min,
                interval,
            }
        }
    };
    Some(out)
}

fn scale_desc(s: &DimScale) -> String {
    match s {
        DimScale::Int { interval, .. } => format!("interval {interval}"),
        DimScale::Float { interval, .. } => format!("interval {interval}"),
    }
}

fn argmax(xs: &[u64]) -> usize {
    let mut best = 0;
    for (i, x) in xs.iter().enumerate() {
        if *x > xs[best] {
            best = i;
        }
    }
    best
}

fn argmin(xs: &[u64]) -> usize {
    let mut best = 0;
    for (i, x) in xs.iter().enumerate() {
        if *x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_records_and_resets() {
        let h = CellHeat::new(3);
        h.record(0);
        h.record(2);
        h.record(2);
        h.record(7); // out of range: ignored
        assert_eq!(h.snapshot(), vec![1, 0, 2]);
        assert_eq!(h.take(), vec![1, 0, 2]);
        assert_eq!(h.snapshot(), vec![0, 0, 0]);
    }

    #[test]
    fn adapt_dim_halves_and_doubles() {
        let d = DimPolicy::int("a", 0, 8);
        let halved = adapt_dim(&d, true).unwrap();
        assert_eq!(halved.scale, DimScale::Int { min: 0, interval: 4 });
        let doubled = adapt_dim(&d, false).unwrap();
        assert_eq!(doubled.scale, DimScale::Int { min: 0, interval: 16 });
        // A unit interval cannot get finer.
        assert!(adapt_dim(&DimPolicy::int("a", 0, 1), true).is_none());
        let f = DimPolicy::float("f", 0.0, 1.0);
        assert_eq!(
            adapt_dim(&f, true).unwrap().scale,
            DimScale::Float { min: 0.0, interval: 0.5 }
        );
    }

    #[test]
    fn argmax_argmin_prefer_first_on_ties() {
        assert_eq!(argmax(&[3, 5, 5]), 1);
        assert_eq!(argmin(&[2, 1, 1]), 1);
        assert_eq!(argmax(&[0]), 0);
    }
}
