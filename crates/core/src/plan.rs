//! DGFIndex query planning (paper §4.3, Algorithms 3 and 4).
//!
//! Step 1 decomposes the query region into **inner GFUs** (every cell
//! fully inside the range on all dimensions) and **boundary GFUs**. For
//! aggregation queries whose aggregates are pre-computed, inner GFUs are
//! answered from their headers with key-value lookups only; otherwise
//! they join the boundary set. Step 2 filters the reorganized table's
//! splits to those overlapping a query-related Slice, and prepares the
//! per-split byte-range lists that the skipping record reader (step 3)
//! consumes. A Slice straddling a split boundary is clipped into both
//! splits and processed by two mappers, exactly as in the paper.

use std::collections::HashMap;
use std::time::Duration;

use dgf_common::{Result, Stopwatch};
use dgf_format::{coalesce_ranges, ByteRange};
use dgf_hive::ScanInput;
use dgf_query::{AggSet, AggState, Query};

use crate::gfu::{GfuKey, GfuValue};
use crate::index::DgfIndex;
use crate::policy::DimSpan;

/// The plan for one DGFIndex query.
pub struct DgfPlan {
    /// Scan inputs covering the boundary region (or the whole query
    /// region when headers are not usable), clipped per split.
    pub inputs: Vec<ScanInput>,
    /// The chosen splits themselves (one per entry of `inputs`), for the
    /// slice-skipping-off ablation which reads them whole.
    pub chosen_splits: Vec<dgf_storage::FileSplit>,
    /// Aggregate states (in query-aggregate order) merged from the inner
    /// region's pre-computed headers, when usable.
    pub inner_states: Option<Vec<AggState>>,
    /// Number of inner GFUs answered from headers.
    pub inner_gfus: u64,
    /// Number of GFUs whose Slices must be read.
    pub boundary_gfus: u64,
    /// Records sitting in the inner region (answered without reading).
    pub inner_records: u64,
    /// All splits of the reorganized table.
    pub splits_total: u64,
    /// Splits with at least one query-related Slice.
    pub splits_read: u64,
    /// Planning time, including key-value store traffic.
    pub index_time: Duration,
}

impl DgfIndex {
    /// Plan a query (Algorithm 3 + Algorithm 4). `use_headers` disables
    /// the pre-computation shortcut for ablations (Figure 17's
    /// "DGF-noprecompute").
    pub fn plan(&self, query: &Query, use_headers: bool) -> Result<DgfPlan> {
        let watch = Stopwatch::start();
        self.check_freshness()?;
        let predicate = query.predicate();
        let extents = self.extents()?;
        let arity = self.policy.arity();

        let empty_plan = |watch: Stopwatch| DgfPlan {
            inputs: Vec::new(),
            chosen_splits: Vec::new(),
            inner_states: None,
            inner_gfus: 0,
            boundary_gfus: 0,
            inner_records: 0,
            splits_total: 0,
            splits_read: 0,
            index_time: watch.elapsed(),
        };
        if extents.is_empty() {
            return Ok(empty_plan(watch));
        }

        // Per-dimension cell spans; a missing dimension in the predicate
        // falls back to the stored extents (partially-specified queries,
        // paper §5.3.4).
        let mut spans: Vec<DimSpan> = Vec::with_capacity(arity);
        for (d, dim) in self.policy.dims().iter().enumerate() {
            let span = dim.cell_span(predicate.range_of(&dim.name), extents.dims[d])?;
            if span.is_empty() {
                return Ok(empty_plan(watch));
            }
            spans.push(span);
        }

        // Headers answer the inner region only when (a) the query is a
        // plain aggregation, (b) every predicate column is an indexed
        // dimension (otherwise inner rows still need row-level
        // filtering), and (c) every query aggregate is pre-computed.
        let header_positions = self.header_positions(query);
        let headers_usable = use_headers
            && query.is_aggregation()
            && header_positions.is_some()
            && predicate
                .columns()
                .all(|c| self.policy.dims().iter().any(|d| d.name == c));

        // Enumerate the cells of the query hyper-rectangle.
        let mut inner_keys: Vec<Vec<u8>> = Vec::new();
        let mut boundary_keys: Vec<Vec<u8>> = Vec::new();
        let mut coord: Vec<i64> = spans.iter().map(|s| s.lo).collect();
        let mut done = false;
        while !done {
            let covered = headers_usable
                && spans
                    .iter()
                    .zip(&coord)
                    .all(|(s, c)| s.covered(*c));
            let key = GfuKey::new(coord.clone()).encode();
            if covered {
                inner_keys.push(key);
            } else {
                boundary_keys.push(key);
            }
            // Odometer increment, least-significant dimension last.
            done = true;
            for d in (0..arity).rev() {
                if coord[d] < spans[d].hi {
                    coord[d] += 1;
                    // Reset the less significant digits.
                    for (s, span) in coord[d + 1..].iter_mut().zip(&spans[d + 1..]) {
                        *s = span.lo;
                    }
                    done = false;
                    break;
                }
            }
        }

        // Inner region: batched header fetch, merged in query-agg order.
        let mut inner_states: Option<Vec<AggState>> = None;
        let mut inner_gfus = 0u64;
        let mut inner_records = 0u64;
        if headers_usable {
            let positions = header_positions.expect("checked usable");
            let index_set = AggSet::bind(&self.aggs, &self.base.schema)?;
            let query_aggs = match query {
                Query::Aggregate { aggs, .. } => aggs.clone(),
                _ => unreachable!("headers_usable implies aggregation"),
            };
            let query_set = AggSet::bind(&query_aggs, &self.base.schema)?;
            let mut acc = query_set.new_states();
            for got in self.kv.multi_get(&inner_keys)?.into_iter().flatten() {
                let value = GfuValue::decode(&got)?;
                inner_gfus += 1;
                inner_records += value.record_count;
                let states = index_set.decode_states(&value.header)?;
                let picked: Vec<AggState> =
                    positions.iter().map(|p| states[*p].clone()).collect();
                query_set.merge(&mut acc, &picked)?;
            }
            inner_states = Some(acc);
        } else {
            boundary_keys.append(&mut inner_keys);
        }

        // Boundary region: fetch slice locations.
        let mut per_file: HashMap<String, Vec<ByteRange>> = HashMap::new();
        let mut boundary_gfus = 0u64;
        for got in self.kv.multi_get(&boundary_keys)?.into_iter().flatten() {
            let value = GfuValue::decode(&got)?;
            boundary_gfus += 1;
            for s in &value.slices {
                if !s.is_empty() {
                    per_file
                        .entry(s.file.clone())
                        .or_default()
                        .push(ByteRange::new(s.start, s.end));
                }
            }
        }

        // Algorithm 4: keep splits overlapping a Slice; clip the Slices of
        // each chosen split to its byte range so each mapper reads only
        // its part (a Slice across two splits is served by two mappers).
        let all_splits = self.ctx.table_splits(&self.data);
        let splits_total = all_splits.len() as u64;
        let mut inputs = Vec::new();
        let mut chosen_splits = Vec::new();
        for split in all_splits {
            let Some(ranges) = per_file.get(&split.path) else {
                continue;
            };
            let split_range = ByteRange::new(split.start, split.end());
            let mine: Vec<ByteRange> = ranges
                .iter()
                .filter_map(|r| r.intersect(&split_range))
                .collect();
            if mine.is_empty() {
                continue;
            }
            let ranges = coalesce_ranges(mine);
            inputs.push(match self.data.format {
                dgf_format::FileFormat::Text => ScanInput::TextRanges {
                    path: split.path.clone(),
                    ranges,
                },
                dgf_format::FileFormat::RcFile => ScanInput::RcRanges {
                    path: split.path.clone(),
                    ranges,
                },
            });
            chosen_splits.push(split);
        }
        let splits_read = inputs.len() as u64;

        Ok(DgfPlan {
            inputs,
            chosen_splits,
            inner_states,
            inner_gfus,
            boundary_gfus,
            inner_records,
            splits_total,
            splits_read,
            index_time: watch.elapsed(),
        })
    }

    /// For each query aggregate, its position in the index's pre-computed
    /// list — `None` if any aggregate is missing (headers unusable).
    fn header_positions(&self, query: &Query) -> Option<Vec<usize>> {
        let Query::Aggregate { aggs, .. } = query else {
            return None;
        };
        let index_keys = self.agg_keys();
        aggs.iter()
            .map(|a| index_keys.iter().position(|k| *k == a.key()))
            .collect()
    }
}
