//! DGFIndex query planning (paper §4.3, Algorithms 3 and 4).
//!
//! Step 1 decomposes the query region into **inner GFUs** (every cell
//! fully inside the range on all dimensions) and **boundary GFUs**. For
//! aggregation queries whose aggregates are pre-computed, inner GFUs are
//! answered from their headers with key-value lookups only; otherwise
//! they join the boundary set. Step 2 filters the reorganized table's
//! splits to those overlapping a query-related Slice, and prepares the
//! per-split byte-range lists that the skipping record reader (step 3)
//! consumes. A Slice straddling a split boundary is clipped into both
//! splits and processed by two mappers, exactly as in the paper.
//!
//! ## Fetch strategies
//!
//! GFU keys are order-preserving: the encoded key of a cell sorts
//! exactly like its coordinate vector compared lexicographically, most
//! significant dimension first. The query hyper-rectangle therefore maps
//! to a small number of **contiguous key runs** — one per combination of
//! the leading "prefix" dimensions, each covering every trailing
//! coordinate in one stretch of the keyspace. [`PlanStrategy::PrefixScan`]
//! exploits this: it issues a single `scan_range` per run instead of one
//! round trip per cell, and consults the index's epoch-tagged
//! [`GfuHeaderCache`](crate::cache::GfuHeaderCache) so that a repeated
//! query touches the store not at all. [`PlanStrategy::PointGets`] keeps
//! the historical cell-at-a-time behaviour for comparison.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use dgf_common::obs::{names, QueryProfile};
use dgf_common::{DgfError, Result, Row, Stopwatch};
use dgf_format::{coalesce_ranges, ByteRange, SliceSidecar};
use dgf_hive::ScanInput;
use dgf_query::{AggSet, AggState, Query};

use crate::cache::CachedGfu;
use crate::fresh::FreshCell;
use crate::gfu::{GfuKey, GfuValue, GFU_PREFIX};
use crate::index::DgfIndex;
use crate::policy::{DimSpan, SplittingPolicy};
use crate::view::ReadView;

/// How the planner fetches GFU values from the key-value store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanStrategy {
    /// One `get` round trip per cell of the query hyper-rectangle: the
    /// historical behaviour, kept as the baseline for benchmarks and for
    /// the equivalence tests. Never touches the header cache.
    PointGets,
    /// One `scan_range` per contiguous key run, with results classified
    /// inner/boundary on the fly, backed by the epoch-tagged header
    /// cache. A fully cached run costs zero key-value operations.
    #[default]
    PrefixScan,
    /// Decompose the fully-inner region into maximal canonical pyramid
    /// nodes (see [`crate::pyramid`]) and read one pre-computed `p:`
    /// header per node, descending to `g:` leaf headers only at the
    /// fringe; boundary cells ride one batched `multi_get`. On a store
    /// without a pyramid (or when headers are unusable, or when the
    /// query has no fully-inner cell) this falls back to
    /// [`PrefixScan`](Self::PrefixScan) wholesale. Answers are
    /// bit-identical to the flat strategies because all three fold the
    /// inner region through the same canonical merge tree.
    Pyramid,
}

/// The plan for one DGFIndex query.
pub struct DgfPlan {
    /// Scan inputs covering the boundary region (or the whole query
    /// region when headers are not usable), clipped per split.
    pub inputs: Vec<ScanInput>,
    /// The chosen splits themselves (one per entry of `inputs`), for the
    /// slice-skipping-off ablation which reads them whole.
    pub chosen_splits: Vec<dgf_storage::FileSplit>,
    /// Aggregate states (in query-aggregate order) merged from the inner
    /// region's pre-computed headers, when usable.
    pub inner_states: Option<Vec<AggState>>,
    /// Number of inner GFUs answered from headers.
    pub inner_gfus: u64,
    /// Number of GFUs whose Slices must be read.
    pub boundary_gfus: u64,
    /// Records sitting in the inner region (answered without reading).
    pub inner_records: u64,
    /// Pyramid nodes (level ≥ 1) merged in place of leaf headers; only
    /// non-zero under [`PlanStrategy::Pyramid`].
    pub pyramid_nodes: u64,
    /// Leaf cells those pyramid nodes summarized — the header reads the
    /// decomposition avoided.
    pub pyramid_cells: u64,
    /// All splits of the reorganized table.
    pub splits_total: u64,
    /// Splits with at least one query-related Slice.
    pub splits_read: u64,
    /// Header-cache hits while planning (always 0 for
    /// [`PlanStrategy::PointGets`]).
    pub cache_hits: u64,
    /// Header-cache misses while planning (always 0 for
    /// [`PlanStrategy::PointGets`]).
    pub cache_misses: u64,
    /// Transient key-value faults absorbed by the planner's retry loops
    /// while building this plan. Zero on a healthy store; chaos tests
    /// assert it is positive exactly when faults were scheduled.
    pub retries_absorbed: u64,
    /// Buffered (acknowledged-but-unflushed) GFU cells the plan merged
    /// from a registered [`FreshSource`](crate::fresh::FreshSource).
    pub fresh_gfus: u64,
    /// Buffered records those cells hold.
    pub fresh_records: u64,
    /// Buffered rows the engine must push through the sink (boundary
    /// fresh cells, and all fresh cells when headers are unusable). The
    /// full predicate is re-applied row by row, exactly like boundary
    /// Slice rows.
    pub fresh_rows: Vec<Row>,
    /// Planning time, including key-value store traffic.
    pub index_time: Duration,
    /// Stage tree collected while building this plan, when the index was
    /// opened with an enabled [`Profiler`](dgf_common::obs::Profiler)
    /// (root span `plan`, with `plan.meta` / `plan.fetch` /
    /// `plan.splits` children carrying `kv.*` and `cache.header.*`
    /// metrics). Empty — at zero cost — otherwise.
    pub profile: QueryProfile,
}

/// Accumulates the per-cell work of a plan: header merging for covered
/// cells, slice collection for boundary cells, and the cache tallies.
///
/// Covered persisted cells are not merged on arrival: their picked
/// states are **buffered** and [`Collector::finalize_inner`] folds them
/// through the canonical merge tree of [`crate::pyramid`]. That makes
/// every strategy's inner aggregate bit-identical — the flat strategies
/// re-play client-side exactly the fold whose pre-computed results the
/// [`PlanStrategy::Pyramid`] path reads from `p:` nodes (which merge
/// via [`Collector::merge_covered`] and leave the buffer empty).
struct Collector {
    header_merge: Option<HeaderMerge>,
    /// Grid arity, for decoding buffered cell coordinates from keys.
    arity: usize,
    /// Picked (query-order) states of covered persisted cells, keyed by
    /// coordinates, awaiting the canonical fold.
    inner_buffer: BTreeMap<Vec<i64>, Vec<AggState>>,
    inner_gfus: u64,
    inner_records: u64,
    boundary_gfus: u64,
    /// Pyramid nodes (level ≥ 1) merged in place of leaf headers.
    pyramid_nodes: u64,
    /// Leaf cells those nodes summarized.
    pyramid_cells: u64,
    per_file: HashMap<String, Vec<ByteRange>>,
    cache_hits: u64,
    cache_misses: u64,
    /// Header-cache fills this fetch wants to make, deferred until the
    /// pinned view validates: a fetch that raced a commit may have read
    /// torn values, and publishing them under the pinned generation
    /// would poison other readers still planning against that view.
    pending_fills: Vec<(Vec<u8>, CachedGfu)>,
}

struct HeaderMerge {
    index_set: AggSet,
    query_set: AggSet,
    positions: Vec<usize>,
    acc: Vec<AggState>,
}

/// One key run's fetch result, decoupled from collector absorption so
/// the serving tier can fetch runs concurrently and still absorb them
/// sequentially in odometer order.
struct RunFetch {
    /// Expected cells of the run in key order: `(key, covered, probe)`.
    cells: Vec<(Vec<u8>, bool, Option<CachedGfu>)>,
    /// Scan results when an authoritative `scan_range` ran; `None` when
    /// every cache probe hit and the run cost zero key-value operations.
    pairs: Option<Vec<(Vec<u8>, Vec<u8>)>>,
    /// Cache probes that hit.
    hits: u64,
    /// Cache probes that missed.
    misses: u64,
}

impl Collector {
    /// Absorb one persisted cell fetched under `key`: covered cells
    /// buffer their picked states for the canonical fold, boundary
    /// cells contribute their Slice byte ranges.
    fn absorb(&mut self, covered: bool, key: &[u8], value: &GfuValue) -> Result<()> {
        if covered {
            let hm = self.header_merge.as_mut().ok_or_else(|| {
                DgfError::Index("covered cell absorbed without usable headers".into())
            })?;
            self.inner_gfus += 1;
            self.inner_records += value.record_count;
            let states = hm.index_set.decode_states(&value.header)?;
            let picked: Vec<AggState> = hm.positions.iter().map(|p| states[*p].clone()).collect();
            let coords = GfuKey::decode(key, self.arity)?.cells;
            self.inner_buffer.insert(coords, picked);
        } else {
            self.boundary_gfus += 1;
            for s in &value.slices {
                if !s.is_empty() {
                    self.per_file
                        .entry(s.file.clone())
                        .or_default()
                        .push(ByteRange::new(s.start, s.end));
                }
            }
        }
        Ok(())
    }

    /// Merge a covered value straight into the accumulator, bypassing
    /// the buffer: pyramid nodes (whose stored states *are* canonical
    /// subtree folds) and fresh memtable cells (which sit outside the
    /// persisted tree and merge after [`finalize_inner`]
    /// (Self::finalize_inner), in both strategies alike).
    fn merge_covered(&mut self, value: &GfuValue) -> Result<()> {
        let hm = self.header_merge.as_mut().ok_or_else(|| {
            DgfError::Index("covered cell absorbed without usable headers".into())
        })?;
        self.inner_gfus += 1;
        self.inner_records += value.record_count;
        let states = hm.index_set.decode_states(&value.header)?;
        let picked: Vec<AggState> = hm.positions.iter().map(|p| states[*p].clone()).collect();
        hm.query_set.merge(&mut hm.acc, &picked)?;
        Ok(())
    }

    /// Fold the buffered covered cells through the canonical merge tree
    /// and merge the resulting node states into the accumulator in
    /// canonical item order — the exact sequence the Pyramid strategy
    /// gets by reading pre-computed `p:` nodes. No-op when nothing was
    /// buffered (Pyramid's direct path, non-header plans, empty inner
    /// regions).
    fn finalize_inner(&mut self, spans: &[DimSpan], top: u8) -> Result<()> {
        if self.inner_buffer.is_empty() {
            return Ok(());
        }
        let hm = self.header_merge.as_mut().ok_or_else(|| {
            DgfError::Index("buffered covered cells without usable headers".into())
        })?;
        let inner = inner_box(spans).ok_or_else(|| {
            DgfError::Index("covered cells buffered for an empty inner box".into())
        })?;
        let buffer = std::mem::take(&mut self.inner_buffer);
        let levels = crate::pyramid::fold_levels(buffer, top, &hm.query_set)?;
        for item in crate::pyramid::decompose(&inner, top) {
            if let Some(states) = levels[item.level as usize].get(&item.coords) {
                hm.query_set.merge(&mut hm.acc, states)?;
            }
        }
        Ok(())
    }
}

/// Push every coordinate vector of an inclusive box, in odometer (= key)
/// order. An empty box (inverted on any dimension) pushes nothing.
fn enumerate_box(bounds: &[(i64, i64)], out: &mut Vec<Vec<i64>>) {
    if bounds.iter().any(|(lo, hi)| lo > hi) {
        return;
    }
    let mut coord: Vec<i64> = bounds.iter().map(|(lo, _)| *lo).collect();
    loop {
        out.push(coord.clone());
        let mut advanced = false;
        for d in (0..bounds.len()).rev() {
            if coord[d] < bounds[d].1 {
                coord[d] += 1;
                for (c, (lo, _)) in coord[d + 1..].iter_mut().zip(&bounds[d + 1..]) {
                    *c = *lo;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            return;
        }
    }
}

/// The fully-inner cell box of a span list: each side's uncovered rim
/// is one cell wide. `None` when a rim arithmetic would overflow `i64`
/// (no cell can be covered on that dimension then).
fn inner_box(spans: &[DimSpan]) -> Option<Vec<(i64, i64)>> {
    spans
        .iter()
        .map(|s| {
            let lo = if s.lo_covered { Some(s.lo) } else { s.lo.checked_add(1) };
            let hi = if s.hi_covered { Some(s.hi) } else { s.hi.checked_sub(1) };
            Some((lo?, hi?))
        })
        .collect()
}

impl DgfIndex {
    /// Plan a query (Algorithm 3 + Algorithm 4) with the default
    /// [`PlanStrategy`]. `use_headers` disables the pre-computation
    /// shortcut for ablations (Figure 17's "DGF-noprecompute").
    pub fn plan(&self, query: &Query, use_headers: bool) -> Result<DgfPlan> {
        self.plan_with_strategy(query, use_headers, PlanStrategy::default())
    }

    /// Plan a query with an explicit fetch strategy. Both strategies
    /// produce identical plans; they differ only in the key-value traffic
    /// needed to build them.
    pub fn plan_with_strategy(
        &self,
        query: &Query,
        use_headers: bool,
        strategy: PlanStrategy,
    ) -> Result<DgfPlan> {
        let watch = Stopwatch::start();
        // An independent arena per plan: the subtree is frozen into
        // `DgfPlan::profile` and engines graft it into their own query
        // profile. Forking a disabled profiler stays disabled (no-op).
        let prof = self.profiler().fork();
        let span = prof.span("plan");
        let retries_before = self.kv.stats().retries_absorbed.load(Ordering::Relaxed);
        let retries_since = |kv: &dyn dgf_kvstore::KvStore| {
            kv.stats()
                .retries_absorbed
                .load(Ordering::Relaxed)
                .saturating_sub(retries_before)
        };
        let predicate = query.predicate();
        // Snapshot the streaming memtable (if one is registered and
        // non-empty) alongside the pinned view: buffered cells may lie
        // beyond what any flush has recorded, and the spans must admit
        // them or fresh rows would silently fall out of the query.
        let fresh_src = self.fresh_source().filter(|s| s.has_fresh());
        // The live policy decides *whether* headers apply (dimension
        // names are invariant under online adaptation — `regrid_to`
        // rejects anything else); each attempt's *cell geometry* comes
        // from the policy its pinned view carries, so a plan racing a
        // regrid never mixes one epoch's intervals with another's keys.
        let live_policy = self.policy();
        let arity = live_policy.arity();

        let empty_plan = |watch: Stopwatch| DgfPlan {
            inputs: Vec::new(),
            chosen_splits: Vec::new(),
            inner_states: None,
            inner_gfus: 0,
            boundary_gfus: 0,
            inner_records: 0,
            pyramid_nodes: 0,
            pyramid_cells: 0,
            splits_total: 0,
            splits_read: 0,
            cache_hits: 0,
            cache_misses: 0,
            retries_absorbed: retries_since(self.kv.as_ref()),
            fresh_gfus: 0,
            fresh_records: 0,
            fresh_rows: Vec::new(),
            index_time: watch.elapsed(),
            profile: QueryProfile::default(),
        };
        // Headers answer the inner region only when (a) the query is a
        // plain aggregation, (b) every predicate column is an indexed
        // dimension (otherwise inner rows still need row-level
        // filtering), and (c) every query aggregate is pre-computed.
        let header_positions = self.header_positions(query);
        let headers_usable = use_headers
            && query.is_aggregation()
            && header_positions.is_some()
            && predicate
                .columns()
                .all(|c| live_policy.dims().iter().any(|d| d.name == c));

        let make_header_merge = || -> Result<Option<HeaderMerge>> {
            if !headers_usable {
                return Ok(None);
            }
            // `headers_usable` already checked both of these; the error
            // arms are unreachable but cheaper than a panic in the read
            // hot path.
            let positions = header_positions
                .clone()
                .ok_or_else(|| DgfError::Index("usable headers lost their positions".into()))?;
            let index_set = AggSet::bind(&self.aggs, &self.base.schema)?;
            let query_aggs = match query {
                Query::Aggregate { aggs, .. } => aggs.clone(),
                _ => {
                    return Err(DgfError::Index(
                        "usable headers on a non-aggregation query".into(),
                    ))
                }
            };
            let query_set = AggSet::bind(&query_aggs, &self.base.schema)?;
            let acc = query_set.new_states();
            Ok(Some(HeaderMerge {
                index_set,
                query_set,
                positions,
                acc,
            }))
        };

        // Optimistic snapshot loop. Each attempt pins one committed
        // ReadView with a single KV read, fetches against it, and
        // validates afterwards that (a) the view is still the committed
        // one and (b) no streaming flush published mid-fetch. Either
        // mismatch discards the attempt — including its header-cache
        // fills — and re-pins, so the plan that escapes the loop is built
        // entirely from one index epoch: never a blend (DESIGN.md §11).
        let mut attempts = 0u32;
        let (view, mut collector, fresh_gfus, fresh_records, fresh_rows) = loop {
            let meta_span = span.child("plan.meta");
            let meta_before = meta_span.is_recording().then(|| self.kv.stats().snapshot());
            self.sync_point("plan.pin");
            let view = self.pin_view()?;
            self.check_freshness_pinned(&view)?;
            // The epoch is read BEFORE the memtable snapshot: a flush
            // completing between snapshot and fetch then shows as an
            // epoch mismatch after the fetch, never as a silently
            // consistent-looking pair. The snapshot cuts at the pinned
            // view's watermark, so rows the view's flush already indexed
            // are not double-counted.
            let epoch_before = fresh_src.as_ref().map(|s| s.flush_epoch());
            let fresh_cells: Vec<FreshCell> = match &fresh_src {
                Some(src) => src.fresh_cells(view.watermark),
                None => Vec::new(),
            };
            let mut extents = view.extents.clone();
            for cell in &fresh_cells {
                extents.observe(&cell.key);
            }
            if let Some(before) = &meta_before {
                self.kv.stats().snapshot().since(before).attach_to_span(&meta_span);
            }
            meta_span.finish();

            // A view with empty extents (or an empty per-dimension span)
            // is already a consistent answer: the view itself is atomic,
            // so no validation is needed for a meta-only empty plan.
            if extents.is_empty() {
                let mut plan = empty_plan(watch);
                span.finish();
                plan.profile = prof.take_profile();
                return Ok(plan);
            }
            // Per-dimension cell spans; a missing dimension in the
            // predicate falls back to the view's extents
            // (partially-specified queries, paper §5.3.4). Recomputed per
            // attempt because a re-pinned view may carry wider extents.
            let view_policy = match &view.policy {
                Some(bytes) => Arc::new(SplittingPolicy::decode(bytes)?),
                None => Arc::clone(&live_policy),
            };
            let mut spans: Vec<DimSpan> = Vec::with_capacity(arity);
            let mut dead_dim = false;
            for (d, dim) in view_policy.dims().iter().enumerate() {
                let dim_span = dim.cell_span(predicate.range_of(&dim.name), extents.dims[d])?;
                if dim_span.is_empty() {
                    dead_dim = true;
                    break;
                }
                // Boundary heat: each partially-covered edge cell is a
                // row-level filtering pass this dimension's interval is
                // too coarse to avoid. The maintenance daemon reads these
                // counters to decide which dimension to re-split.
                if !dim_span.lo_covered {
                    self.heat().record(d);
                }
                if !dim_span.hi_covered && dim_span.hi > dim_span.lo {
                    self.heat().record(d);
                }
                spans.push(dim_span);
            }
            if dead_dim {
                let mut plan = empty_plan(watch);
                span.finish();
                plan.profile = prof.take_profile();
                return Ok(plan);
            }

            let fetch_span = span.child("plan.fetch");
            let fetch_before = fetch_span.is_recording().then(|| self.kv.stats().snapshot());
            let mut collector = Collector {
                header_merge: make_header_merge()?,
                arity,
                inner_buffer: BTreeMap::new(),
                inner_gfus: 0,
                inner_records: 0,
                boundary_gfus: 0,
                pyramid_nodes: 0,
                pyramid_cells: 0,
                per_file: HashMap::new(),
                cache_hits: 0,
                cache_misses: 0,
                pending_fills: Vec::new(),
            };
            self.sync_point("plan.fetch");
            match strategy {
                PlanStrategy::PointGets => {
                    self.fetch_point_gets(&view, &spans, headers_usable, &mut collector)?
                }
                PlanStrategy::PrefixScan => self.fetch_prefix_scans(
                    &view,
                    &spans,
                    &extents.dims,
                    headers_usable,
                    &mut collector,
                )?,
                PlanStrategy::Pyramid => {
                    // A dedicated child span: pyramid node/cell tallies
                    // live here (and only here — the `kv.*` deltas stay
                    // on `plan.fetch`, so profile invariants still hold).
                    let pyramid_span = fetch_span.child("plan.pyramid");
                    let r = self.fetch_pyramid(
                        &view,
                        &spans,
                        &extents.dims,
                        headers_usable,
                        &mut collector,
                    );
                    if pyramid_span.is_recording() {
                        for (name, v) in [
                            (names::PLAN_PYRAMID_NODES, collector.pyramid_nodes),
                            (names::PLAN_PYRAMID_CELLS, collector.pyramid_cells),
                        ] {
                            if v > 0 {
                                pyramid_span.add(name, v);
                            }
                        }
                    }
                    pyramid_span.finish();
                    r?
                }
            }
            // Fold the buffered covered cells through the canonical merge
            // tree. The Pyramid direct path buffered nothing (its node
            // states *are* that fold, read pre-computed), so this is a
            // no-op there; the flat strategies replay the fold here,
            // which is what makes the three strategies bit-identical.
            collector.finalize_inner(
                &spans,
                self.pyramid_levels()
                    .unwrap_or(crate::pyramid::DEFAULT_PYRAMID_LEVELS),
            )?;

            // Merge the memtable snapshot: a fully covered fresh cell
            // contributes its partial aggregate states through the same
            // header path as a persisted GFU; anything else contributes
            // raw rows for the engine to re-filter and push.
            let mut fresh_gfus = 0u64;
            let mut fresh_records = 0u64;
            let mut fresh_rows: Vec<Row> = Vec::new();
            for cell in &fresh_cells {
                let in_span = spans
                    .iter()
                    .zip(&cell.key.cells)
                    .all(|(s, c)| *c >= s.lo && *c <= s.hi);
                if !in_span {
                    continue;
                }
                fresh_gfus += 1;
                fresh_records += cell.record_count;
                let covered = headers_usable
                    && spans.iter().zip(&cell.key.cells).all(|(s, c)| s.covered(*c));
                if covered {
                    let value = GfuValue {
                        header: cell.header.clone(),
                        slices: Vec::new(),
                        record_count: cell.record_count,
                    };
                    collector.merge_covered(&value)?;
                } else {
                    fresh_rows.extend(cell.rows.iter().cloned());
                }
            }

            // Validate: the pinned view must still be committed, and no
            // flush may have published between our memtable snapshot and
            // the store fetch (buffered rows might now also be live in
            // the store — or half of them might be).
            let view_ok = self.view_unchanged(&view)?;
            let epoch_ok = match &fresh_src {
                None => true,
                Some(src) => {
                    let epoch_after = src.flush_epoch();
                    epoch_before == Some(epoch_after) && epoch_after % 2 == 0
                }
            };
            if let Some(before) = &fetch_before {
                self.kv.stats().snapshot().since(before).attach_to_span(&fetch_span);
                for (name, v) in [
                    (names::CACHE_HEADER_HITS, collector.cache_hits),
                    (names::CACHE_HEADER_MISSES, collector.cache_misses),
                    (names::PLAN_INNER_GFUS, collector.inner_gfus),
                    (names::PLAN_BOUNDARY_GFUS, collector.boundary_gfus),
                    (names::PLAN_INNER_RECORDS, collector.inner_records),
                    (names::PLAN_FRESH_GFUS, fresh_gfus),
                    (names::PLAN_FRESH_RECORDS, fresh_records),
                ] {
                    if v > 0 {
                        fetch_span.add(name, v);
                    }
                }
            }
            fetch_span.finish();
            if view_ok && epoch_ok {
                break (view, collector, fresh_gfus, fresh_records, fresh_rows);
            }
            attempts += 1;
            // A reader cannot validate while a flush is mid-epoch, so
            // the budget must comfortably exceed the longest commit
            // window (which grew with pyramid staging: one staged node
            // per dirty ancestor, and under seeded interleaving
            // schedules a pause per level).
            if attempts > 32 {
                return Err(DgfError::Transient(
                    "concurrent index commits kept racing query planning".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        // The attempt survived validation: its header-cache fills are
        // known-consistent for the pinned generation and safe to publish.
        // The validated view is the committed one, so every generation
        // below it is permanently unreachable — retire those entries now
        // instead of waiting for LRU pressure to find them.
        let cache = self.header_cache();
        cache.retire_below(view.generation);
        for (key, value) in collector.pending_fills.drain(..) {
            cache.insert(view.generation, key, value);
        }

        let inner_states = collector.header_merge.map(|hm| hm.acc);

        // Algorithm 4: keep splits overlapping a Slice; clip the Slices of
        // each chosen split to its byte range so each mapper reads only
        // its part (a Slice across two splits is served by two mappers).
        let splits_span = span.child("plan.splits");
        // Enumerate splits from the pinned view's file list, not a live
        // directory listing: a racing apply renames new slice files into
        // the data directory, and a live listing could pair them with
        // this view's headers (or miss files a newer header refers to).
        // Slice files are immutable once renamed, so the pinned list is
        // always readable. Legacy non-versioned views fall back to the
        // live listing, as before.
        let all_splits: Vec<dgf_storage::FileSplit> = match &view.data_files {
            Some(files) => files
                .iter()
                .flat_map(|(path, len)| {
                    dgf_storage::splits_for_file(path, *len, self.ctx.hdfs.block_size())
                })
                .collect(),
            // Legacy non-versioned views list the directory live, which
            // may now hold sidecar files: they are index, not data.
            None => self
                .ctx
                .table_splits(&self.data)
                .into_iter()
                .filter(|s| !dgf_format::is_sidecar_path(&s.path))
                .collect(),
        };
        let splits_total = all_splits.len() as u64;
        let mut inputs = Vec::new();
        let mut chosen_splits = Vec::new();
        for split in all_splits {
            let Some(ranges) = collector.per_file.get(&split.path) else {
                continue;
            };
            let split_range = ByteRange::new(split.start, split.end());
            let mine: Vec<ByteRange> = ranges
                .iter()
                .filter_map(|r| r.intersect(&split_range))
                .collect();
            if mine.is_empty() {
                continue;
            }
            let ranges = coalesce_ranges(mine);
            inputs.push(match self.data.format {
                dgf_format::FileFormat::Text => ScanInput::TextRanges {
                    path: split.path.clone(),
                    ranges,
                },
                dgf_format::FileFormat::RcFile => ScanInput::RcRanges {
                    path: split.path.clone(),
                    ranges,
                },
            });
            chosen_splits.push(split);
        }
        let splits_read = inputs.len() as u64;
        if splits_span.is_recording() {
            splits_span.add(names::PLAN_SPLITS_TOTAL, splits_total);
            splits_span.add(names::PLAN_SPLITS_READ, splits_read);
        }
        splits_span.finish();
        // Sub-slice pruning (DESIGN.md §15): consult each boundary
        // slice's sidecar to drop row groups no matching row can live in
        // and to attach residual row bitmaps. Strictly an accelerator —
        // a missing/stale/corrupt sidecar leaves the input unpruned.
        if self.data.format == dgf_format::FileFormat::RcFile
            && self.ctx.scan_options().sidecar
            && !predicate.is_trivial()
        {
            self.prune_inputs_with_sidecars(&mut inputs, predicate, &span)?;
        }
        span.finish();

        Ok(DgfPlan {
            inputs,
            chosen_splits,
            inner_states,
            inner_gfus: collector.inner_gfus,
            boundary_gfus: collector.boundary_gfus,
            inner_records: collector.inner_records,
            pyramid_nodes: collector.pyramid_nodes,
            pyramid_cells: collector.pyramid_cells,
            splits_total,
            splits_read,
            cache_hits: collector.cache_hits,
            cache_misses: collector.cache_misses,
            retries_absorbed: retries_since(self.kv.as_ref()),
            fresh_gfus,
            fresh_records,
            fresh_rows,
            index_time: watch.elapsed(),
            profile: prof.take_profile(),
        })
    }

    /// Rewrite `RcRanges` inputs as `RcPruned` wherever a slice's sidecar
    /// proves row groups (or rows) cannot match `predicate`. Each distinct
    /// file's sidecar is loaded and verified once; every degradation
    /// (missing file, stale `data_len`, failed checksum) is counted on
    /// [`ScanStats`](dgf_common::ScanStats) and leaves that input as-is.
    fn prune_inputs_with_sidecars(
        &self,
        inputs: &mut [ScanInput],
        predicate: &dgf_query::Predicate,
        span: &dgf_common::obs::SpanGuard,
    ) -> Result<()> {
        let sidecar_span = span.child("plan.sidecar");
        let io_before = sidecar_span
            .is_recording()
            .then(|| self.ctx.hdfs.stats().snapshot());
        let scan_before = self.ctx.scan_stats.snapshot();
        let stats = &self.ctx.scan_stats;
        let mut cache: HashMap<String, Option<SliceSidecar>> = HashMap::new();
        for input in inputs.iter_mut() {
            let ScanInput::RcRanges { path, ranges } = input else {
                continue;
            };
            let sidecar = cache.entry(path.clone()).or_insert_with(|| {
                let scx = dgf_format::sidecar_path(path);
                if !self.ctx.hdfs.file_exists(&scx) {
                    stats.sidecar_misses.inc();
                    return None;
                }
                let Ok(bytes) = self.ctx.hdfs.read_file(&scx) else {
                    stats.sidecar_misses.inc();
                    return None;
                };
                stats.sidecar_bytes.add(bytes.len() as u64);
                let Ok(sc) = SliceSidecar::decode(&bytes) else {
                    stats.sidecar_corrupt.inc();
                    return None;
                };
                // Stale: the slice file changed size since the sidecar
                // was written (should be impossible for immutable slice
                // files, but degrade rather than trust).
                if self.ctx.hdfs.file_len(path).ok() != Some(sc.data_len) {
                    stats.sidecar_corrupt.inc();
                    return None;
                }
                stats.sidecar_hits.inc();
                Some(sc)
            });
            let Some(sidecar) = sidecar else { continue };
            let outcome = crate::sidecar::prune(sidecar, ranges, predicate)?;
            stats.sidecar_groups_pruned.add(outcome.groups_pruned);
            stats.sidecar_bytes_skipped.add(outcome.bytes_skipped);
            if outcome.restricted {
                *input = ScanInput::RcPruned {
                    path: std::mem::take(path),
                    ranges: std::mem::take(ranges),
                    row_filter: outcome.row_filter,
                };
            }
        }
        if let Some(before) = &io_before {
            self.ctx.hdfs.attach_io_to_span(&sidecar_span, before);
            let delta = self.ctx.scan_stats.snapshot().since(&scan_before);
            for (name, v) in [
                (names::SCAN_SIDECAR_HITS, delta.sidecar_hits),
                (names::SCAN_SIDECAR_MISSES, delta.sidecar_misses),
                (names::SCAN_SIDECAR_CORRUPT, delta.sidecar_corrupt),
                (names::SCAN_SIDECAR_BYTES, delta.sidecar_bytes),
                (names::SCAN_SIDECAR_GROUPS_PRUNED, delta.sidecar_groups_pruned),
                (names::SCAN_SIDECAR_BYTES_SKIPPED, delta.sidecar_bytes_skipped),
            ] {
                if v > 0 {
                    sidecar_span.add(name, v);
                }
            }
        }
        sidecar_span.finish();
        Ok(())
    }

    /// Baseline fetch: enumerate every cell of the query hyper-rectangle
    /// and issue one `get` per cell — inner cells first, then boundary
    /// cells, each set in odometer order, matching the historical planner.
    fn fetch_point_gets(
        &self,
        view: &ReadView,
        spans: &[DimSpan],
        headers_usable: bool,
        collector: &mut Collector,
    ) -> Result<()> {
        let arity = spans.len();
        let mut inner_keys: Vec<Vec<u8>> = Vec::new();
        let mut boundary_keys: Vec<Vec<u8>> = Vec::new();
        let mut coord: Vec<i64> = spans.iter().map(|s| s.lo).collect();
        let mut done = false;
        while !done {
            let covered =
                headers_usable && spans.iter().zip(&coord).all(|(s, c)| s.covered(*c));
            let key = GfuKey::new(coord.clone()).encode();
            if covered {
                inner_keys.push(key);
            } else {
                boundary_keys.push(key);
            }
            // Odometer increment, least-significant dimension last.
            done = true;
            for d in (0..arity).rev() {
                if coord[d] < spans[d].hi {
                    coord[d] += 1;
                    // Reset the less significant digits.
                    for (s, span) in coord[d + 1..].iter_mut().zip(&spans[d + 1..]) {
                        *s = span.lo;
                    }
                    done = false;
                    break;
                }
            }
        }
        for key in &inner_keys {
            if let Some(got) = self.kv_get_pinned(view, key)? {
                let value = GfuValue::decode(&got)?;
                collector.absorb(true, key, &value)?;
            }
        }
        for key in &boundary_keys {
            if let Some(got) = self.kv_get_pinned(view, key)? {
                let value = GfuValue::decode(&got)?;
                collector.absorb(false, key, &value)?;
            }
        }
        Ok(())
    }

    /// Batched fetch: decompose the hyper-rectangle into contiguous key
    /// runs and serve each run from the header cache or one `scan_range`.
    ///
    /// Dimensions whose span covers the full stored extent admit *every*
    /// stored coordinate, so a trailing block of full-extent dimensions
    /// can be folded into a run without pulling in any extraneous keys.
    /// `scan_from` is the most significant dimension inside the run: the
    /// run's keys share the encoded coordinates of every dimension before
    /// it ("the prefix") and sweep all span combinations from it onward.
    fn fetch_prefix_scans(
        &self,
        view: &ReadView,
        spans: &[DimSpan],
        extents: &[(i64, i64)],
        headers_usable: bool,
        collector: &mut Collector,
    ) -> Result<()> {
        let arity = spans.len();

        // The longest suffix of dimensions whose span is the full extent.
        let mut suffix_full_start = arity;
        while suffix_full_start > 0 {
            let d = suffix_full_start - 1;
            if spans[d].lo == extents[d].0 && spans[d].hi == extents[d].1 {
                suffix_full_start -= 1;
            } else {
                break;
            }
        }
        // The dimension the scan sweeps first. It may have a partial
        // span: being the most significant swept dimension, its bounds
        // clip the run exactly. Everything after it is full-extent.
        let scan_from = suffix_full_start.saturating_sub(1);

        // Odometer over the prefix dimensions; each setting is one run.
        let mut prefixes: Vec<Vec<i64>> = Vec::new();
        let mut prefix: Vec<i64> = spans[..scan_from].iter().map(|s| s.lo).collect();
        loop {
            prefixes.push(prefix.clone());
            let mut advanced = false;
            for d in (0..scan_from).rev() {
                if prefix[d] < spans[d].hi {
                    prefix[d] += 1;
                    for (p, span) in prefix[d + 1..].iter_mut().zip(&spans[d + 1..scan_from]) {
                        *p = span.lo;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }

        let workers = self.fetch_parallelism().min(prefixes.len());
        if workers <= 1 {
            // The historical strictly sequential path: fetch then absorb
            // one run at a time, in odometer order.
            for p in &prefixes {
                let fetched = self.fetch_run(view, p, spans, scan_from, headers_usable)?;
                self.absorb_run(collector, fetched)?;
            }
            return Ok(());
        }

        // The serving tier's scatter: runs are *fetched* concurrently on
        // a worker pool (round-robin assignment, so the schedule is a
        // pure function of the run list), then *absorbed* strictly in
        // odometer order on this thread. The Collector's fold sequence —
        // and with it every Neumaier compensation step — is therefore
        // byte-identical to the sequential path, whatever order the
        // fetches complete in. Sync points let the interleaving harness
        // pause the coordinator mid-scatter by seed.
        self.sync_point("serve.scatter");
        let fetches: Vec<Result<RunFetch>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let prefixes = &prefixes;
                    scope.spawn(move || {
                        let mut out: Vec<(usize, Result<RunFetch>)> = Vec::new();
                        let mut i = w;
                        while i < prefixes.len() {
                            self.sync_point("serve.fetch");
                            out.push((
                                i,
                                self.fetch_run(view, &prefixes[i], spans, scan_from, headers_usable),
                            ));
                            i += workers;
                        }
                        out
                    })
                })
                .collect();
            let mut slots: Vec<Option<Result<RunFetch>>> =
                prefixes.iter().map(|_| None).collect();
            for h in handles {
                for (i, r) in h.join().expect("run-fetch worker panicked") {
                    slots[i] = Some(r);
                }
            }
            slots
                .into_iter()
                .map(|s| s.expect("every run is assigned to exactly one worker"))
                .collect()
        });
        self.sync_point("serve.merge");
        for fetched in fetches {
            self.absorb_run(collector, fetched?)?;
        }
        Ok(())
    }

    /// Fetch one key run without touching the collector: probe the header
    /// cache for every expected cell; if all probes hit (negative entries
    /// included) the run costs zero key-value operations, otherwise one
    /// `scan_range` re-reads the whole run. Read-only against the pinned
    /// view, so runs may be fetched concurrently; all merging happens in
    /// [`absorb_run`](Self::absorb_run), on one thread, in run order.
    fn fetch_run(
        &self,
        view: &ReadView,
        prefix: &[i64],
        spans: &[DimSpan],
        scan_from: usize,
        headers_usable: bool,
    ) -> Result<RunFetch> {
        let arity = spans.len();
        let generation = view.generation;
        let cache = self.header_cache();
        let prefix_covered =
            headers_usable && spans[..scan_from].iter().zip(prefix).all(|(s, c)| s.covered(*c));

        // Encode the shared key prefix once; cells only differ past it.
        let mut key_prefix = Vec::with_capacity(GFU_PREFIX.len() + 8 * arity);
        key_prefix.extend_from_slice(GFU_PREFIX);
        for c in prefix {
            dgf_common::codec::encode_key_i64(&mut key_prefix, *c);
        }

        // Expected cells of the run, in key (= odometer) order.
        let mut cells: Vec<(Vec<u8>, bool, Option<CachedGfu>)> = Vec::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut all_hit = true;
        let mut suffix: Vec<i64> = spans[scan_from..].iter().map(|s| s.lo).collect();
        let mut done = false;
        while !done {
            let covered = prefix_covered
                && spans[scan_from..]
                    .iter()
                    .zip(&suffix)
                    .all(|(s, c)| s.covered(*c));
            let mut key = key_prefix.clone();
            for c in &suffix {
                dgf_common::codec::encode_key_i64(&mut key, *c);
            }
            let probe = cache.get(generation, &key);
            match &probe {
                Some(_) => hits += 1,
                None => {
                    misses += 1;
                    all_hit = false;
                }
            }
            cells.push((key, covered, probe));
            done = true;
            for d in (0..suffix.len()).rev() {
                if suffix[d] < spans[scan_from + d].hi {
                    suffix[d] += 1;
                    for (s, span) in suffix[d + 1..].iter_mut().zip(&spans[scan_from + d + 1..]) {
                        *s = span.lo;
                    }
                    done = false;
                    break;
                }
            }
        }

        if all_hit {
            return Ok(RunFetch {
                cells,
                pairs: None,
                hits,
                misses,
            });
        }

        // Authoritative scan of the whole run. The run's keys are exactly
        // the expected cells intersected with the store: the prefix pins
        // the leading coordinates, dimension `scan_from` is clipped by the
        // scan bounds, and every later dimension is full-extent, so no
        // stored key inside the bounds falls outside the cell set.
        let (first, last) = match (cells.first(), cells.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => return Err(DgfError::Index("prefix-scan run with no cells".into())),
        };
        let start = first.0.clone();
        let mut end = last.0.clone();
        // Keys are fixed-length, so appending a byte makes the half-open
        // scan include the run's maximum key.
        end.push(0x00);
        let pairs = self.kv_scan_range_pinned(view, &start, &end)?;
        Ok(RunFetch {
            cells,
            pairs: Some(pairs),
            hits,
            misses,
        })
    }

    /// Merge one fetched run into the collector, in the caller's run
    /// order. A fully cached run absorbs its probe hits; a scanned run
    /// merge-walks the expected cells (sorted) against the scan results
    /// (sorted): found cells are absorbed and queued for caching,
    /// expected-but-absent cells queue a negative entry. Fills are
    /// deferred to the planning loop so a fetch that fails view
    /// validation never publishes possibly-torn values.
    fn absorb_run(&self, collector: &mut Collector, fetched: RunFetch) -> Result<()> {
        collector.cache_hits += fetched.hits;
        collector.cache_misses += fetched.misses;
        let Some(pairs) = fetched.pairs else {
            for (key, covered, probe) in &fetched.cells {
                if let Some(Some(value)) = probe {
                    collector.absorb(*covered, key, value)?;
                }
            }
            return Ok(());
        };
        let mut next_pair = 0usize;
        for (key, covered, _) in &fetched.cells {
            if next_pair < pairs.len() && pairs[next_pair].0 == *key {
                let value = Arc::new(GfuValue::decode(&pairs[next_pair].1)?);
                collector
                    .pending_fills
                    .push((key.clone(), Some(value.clone())));
                collector.absorb(*covered, key, &value)?;
                next_pair += 1;
            } else {
                collector.pending_fills.push((key.clone(), None));
            }
        }
        debug_assert_eq!(
            next_pair,
            pairs.len(),
            "scan returned a key outside the run's cell set"
        );
        Ok(())
    }

    /// Pyramid fetch: decompose the fully-inner box into maximal
    /// canonical pyramid nodes and read one pre-computed header per
    /// node; the uncovered rim and the pyramid items ride a single
    /// batched `multi_get`. Falls back wholesale to
    /// [`fetch_prefix_scans`](Self::fetch_prefix_scans) when the store
    /// carries no pyramid, headers are unusable, or the query has no
    /// fully-inner cell — a partial pyramid would complicate the
    /// canonical-fold argument for no read savings.
    fn fetch_pyramid(
        &self,
        view: &ReadView,
        spans: &[DimSpan],
        extents: &[(i64, i64)],
        headers_usable: bool,
        collector: &mut Collector,
    ) -> Result<()> {
        let top = match self.pyramid_levels() {
            Some(t) if headers_usable => t,
            _ => {
                return self.fetch_prefix_scans(view, spans, extents, headers_usable, collector)
            }
        };
        let inner = match inner_box(spans) {
            Some(b) if b.iter().all(|(lo, hi)| lo <= hi) => b,
            _ => {
                return self.fetch_prefix_scans(view, spans, extents, headers_usable, collector)
            }
        };

        // Boundary cells: peel the uncovered rim into at most 2·arity
        // disjoint slabs, keyed by the first dimension that escapes the
        // inner box — dimensions before it stay inside the inner range,
        // the escaping dimension is pinned at an uncovered rim cell,
        // and dimensions after it sweep their full span. A single-cell
        // span that is uncovered on both sides pins the same cell
        // twice, hence the `contains` dedup.
        let arity = spans.len();
        let mut boundary: Vec<Vec<i64>> = Vec::new();
        for d in 0..arity {
            let s = &spans[d];
            let mut pins: Vec<i64> = Vec::new();
            if !s.lo_covered {
                pins.push(s.lo);
            }
            if !s.hi_covered && !pins.contains(&s.hi) {
                pins.push(s.hi);
            }
            for pin in pins {
                let slab: Vec<(i64, i64)> = (0..arity)
                    .map(|j| match j.cmp(&d) {
                        std::cmp::Ordering::Less => inner[j],
                        std::cmp::Ordering::Equal => (pin, pin),
                        std::cmp::Ordering::Greater => (spans[j].lo, spans[j].hi),
                    })
                    .collect();
                enumerate_box(&slab, &mut boundary);
            }
        }
        // Lexicographic coordinate order is encoded-key order, so the
        // boundary absorbs in the same sequence a scan would deliver.
        boundary.sort();

        let items = crate::pyramid::decompose(&inner, top);
        let boundary_keys: Vec<Vec<u8>> = boundary
            .into_iter()
            .map(|c| GfuKey::new(c).encode())
            .collect();
        let item_keys: Vec<Vec<u8>> = items.iter().map(|n| n.store_key()).collect();

        // Probe the epoch-tagged header cache (shared with PrefixScan;
        // `p:` node values cache under the same generation tag), then
        // fetch every miss in one batched, snapshot-atomic multi_get.
        let generation = view.generation;
        let cache = self.header_cache();
        let all_keys: Vec<&Vec<u8>> = boundary_keys.iter().chain(item_keys.iter()).collect();
        let mut resolved: Vec<CachedGfu> = Vec::with_capacity(all_keys.len());
        let mut miss_keys: Vec<Vec<u8>> = Vec::new();
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, key) in all_keys.iter().enumerate() {
            match cache.get(generation, key) {
                Some(cached) => {
                    collector.cache_hits += 1;
                    resolved.push(cached);
                }
                None => {
                    collector.cache_misses += 1;
                    miss_keys.push((*key).clone());
                    miss_idx.push(i);
                    resolved.push(None);
                }
            }
        }
        if !miss_keys.is_empty() {
            let fetched = self.kv_multi_get_pinned(view, &miss_keys)?;
            for ((i, key), got) in miss_idx.into_iter().zip(miss_keys).zip(fetched) {
                let value = match got {
                    Some(bytes) => Some(Arc::new(GfuValue::decode(&bytes)?)),
                    None => None,
                };
                // Fills (positive and negative) stay deferred until the
                // pinned view validates, like every other strategy.
                collector.pending_fills.push((key, value.clone()));
                resolved[i] = value;
            }
        }

        let (boundary_res, item_res) = resolved.split_at(boundary_keys.len());
        for (value, key) in boundary_res.iter().zip(&boundary_keys) {
            if let Some(v) = value {
                collector.absorb(false, key, v)?;
            }
        }
        // Items merge in decomposition (DFS) order — the exact sequence
        // `finalize_inner` replays for the flat strategies. An absent
        // node means no data anywhere under it (the maintenance
        // invariant), so skipping it is the empty merge.
        for (value, item) in item_res.iter().zip(&items) {
            if let Some(v) = value {
                collector.merge_covered(v)?;
                if item.level >= 1 {
                    collector.pyramid_nodes += 1;
                    collector.pyramid_cells = collector
                        .pyramid_cells
                        .saturating_add(u64::try_from(item.cell_count()).unwrap_or(u64::MAX));
                }
            }
        }
        Ok(())
    }

    /// For each query aggregate, its position in the index's pre-computed
    /// list — `None` if any aggregate is missing (headers unusable).
    fn header_positions(&self, query: &Query) -> Option<Vec<usize>> {
        let Query::Aggregate { aggs, .. } = query else {
            return None;
        };
        let index_keys = self.agg_keys();
        aggs.iter()
            .map(|a| index_keys.iter().position(|k| *k == a.key()))
            .collect()
    }
}
