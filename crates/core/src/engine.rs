//! The DGFIndex query engine (paper §4.3, step 3 and result assembly).
//!
//! The engine is transparent to the caller, as in the paper ("Hive will
//! automatically use a DGFIndex when processing MDRQs"): it takes the
//! same [`Query`] as every other engine, plans the GFU decomposition,
//! scans only the boundary Slices with the skipping reader, merges the
//! inner region's pre-computed headers, and finishes the sink.

use std::sync::Arc;

use dgf_common::{Result, Stopwatch};
use dgf_hive::{execute_sink, TableRef};
use dgf_query::{Engine, EngineRun, Query, RunStats};

use crate::index::DgfIndex;
use crate::plan::PlanStrategy;

/// Query engine over a built [`DgfIndex`].
pub struct DgfEngine {
    index: Arc<DgfIndex>,
    use_headers: bool,
    slice_skipping: bool,
    strategy: PlanStrategy,
    right: Option<TableRef>,
}

impl DgfEngine {
    /// An engine using pre-computed headers where possible.
    pub fn new(index: Arc<DgfIndex>) -> Self {
        DgfEngine {
            index,
            use_headers: true,
            slice_skipping: true,
            strategy: PlanStrategy::default(),
            right: None,
        }
    }

    /// Plan with an explicit fetch strategy (e.g.
    /// [`PlanStrategy::Pyramid`]). All strategies produce bit-identical
    /// answers; they differ in the key-value traffic needed to plan.
    pub fn with_strategy(mut self, strategy: PlanStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Disable the pre-computation shortcut (Figure 17's
    /// "DGF-noprecompute"; also the ablation benchmark).
    pub fn without_precompute(mut self) -> Self {
        self.use_headers = false;
        self
    }

    /// Ablation: read chosen splits whole instead of skipping to the
    /// query-related Slices (reduces DGFIndex to Compact-style
    /// split-granular reading over reorganized data).
    pub fn without_slice_skipping(mut self) -> Self {
        self.slice_skipping = false;
        self
    }

    /// Attach the dimension table used by join queries.
    pub fn with_right(mut self, right: TableRef) -> Self {
        self.right = Some(right);
        self
    }

    /// The wrapped index.
    pub fn index(&self) -> &Arc<DgfIndex> {
        &self.index
    }
}

impl Engine for DgfEngine {
    fn name(&self) -> String {
        match (self.use_headers, self.slice_skipping) {
            (true, true) => "DGFIndex".to_owned(),
            (false, true) => "DGFIndex-noprecompute".to_owned(),
            (true, false) => "DGFIndex-noskip".to_owned(),
            (false, false) => "DGFIndex-noprecompute-noskip".to_owned(),
        }
    }

    fn run(&self, query: &Query) -> Result<EngineRun> {
        // Without slice skipping, chosen splits are read whole — rows of
        // *inner* GFUs sharing a split with boundary Slices would be
        // double-counted if headers were also merged, so the header
        // shortcut is disabled together with skipping.
        let use_headers = self.use_headers && self.slice_skipping;
        // Per-run profile: fork the index's profiler so concurrent runs
        // don't interleave spans. Disabled profilers make all of this a
        // no-op.
        let prof = self.index.profiler().fork();
        let root = prof.span("query");
        let ctx = &self.index.ctx;
        // Snapshot scan accounting BEFORE planning: the planner's sidecar
        // consultation charges `scan.sidecar.*` counters (DESIGN.md §15)
        // that belong to this run's ledger. Data I/O still snapshots after
        // planning — sidecar reads are index I/O, not data I/O, and the
        // planner attributes them to its own `plan.sidecar` span.
        let scan_before = ctx.scan_stats.snapshot();
        let plan_span = root.child("query.plan");
        let mut plan = self
            .index
            .plan_with_strategy(query, use_headers, self.strategy)?;
        plan_span.finish();
        if !self.slice_skipping {
            plan.inputs = std::mem::take(&mut plan.chosen_splits)
                .into_iter()
                .map(dgf_hive::ScanInput::FullSplit)
                .collect();
        }
        let before = ctx.hdfs.stats().snapshot();
        let watch = Stopwatch::start();

        // Boundary region: scan the query-related Slices only. The full
        // predicate is re-applied row by row, so boundary over-coverage
        // can never contaminate the answer.
        let scan_span = root.child("query.scan");
        let mut sink = execute_sink(
            ctx,
            &self.index.data,
            query,
            self.right.as_deref(),
            plan.inputs,
        )?;
        // Inner region: merge the pre-computed headers (exact because
        // every inner cell lies fully inside the query region).
        if let Some(states) = &plan.inner_states {
            sink.merge_agg_states(states)?;
        }
        // Fresh region: acknowledged-but-unflushed rows from the
        // streaming memtable. They live in no data file, so pushing them
        // here can never double-count a scanned Slice; the full predicate
        // re-applies row by row like any boundary read.
        let fresh_rows = std::mem::take(&mut plan.fresh_rows);
        if !fresh_rows.is_empty() {
            let bound = query.predicate().bind(&self.index.data.schema)?;
            for row in &fresh_rows {
                sink.push_if(row, &bound)?;
            }
        }
        let result = sink.finish();
        let scan_delta = ctx.scan_stats.snapshot().since(&scan_before);
        // The storage layer attributes its I/O to the scan stage.
        ctx.hdfs.attach_io_to_span(&scan_span, &before);
        dgf_hive::attach_scan_to_span(&scan_span, &scan_delta);
        scan_span.finish();
        root.finish();
        let delta = ctx.hdfs.stats().snapshot().since(&before);
        let mut profile = prof.take_profile();
        profile.graft("query.plan", std::mem::take(&mut plan.profile));
        Ok(EngineRun {
            result,
            stats: RunStats {
                index_time: plan.index_time,
                data_time: watch.elapsed(),
                // GFU lookups play the role of index records here.
                index_records_read: plan.inner_gfus + plan.boundary_gfus,
                data_records_read: delta.records_read,
                data_bytes_read: delta.bytes_read,
                splits_total: plan.splits_total,
                splits_read: plan.splits_read,
                index_cache_hits: plan.cache_hits,
                index_cache_misses: plan.cache_misses,
                // Planning-time KV retries plus data-phase file retries.
                retries_absorbed: plan.retries_absorbed + delta.retries,
                profile,
                scan: scan_delta,
            },
        })
    }
}
