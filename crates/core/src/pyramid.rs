//! Hierarchical aggregate pyramid over the grid (k²-treap-style).
//!
//! Inner-region aggregation over a fine grid is O(cells in region) when
//! every inner GFU header is read individually — fatal on the 10⁶–10⁸
//! cell grids a million-user space needs. Following "Aggregated 2D Range
//! Queries on Clustered Points" (Brisaboa et al.), the store keeps a
//! **pyramid** of coarser aggregate headers above the `g:` leaves: the
//! level-`k` node at coordinates `c` summarizes the axis-aligned box of
//! cells `[c·2ᵏ, (c+1)·2ᵏ − 1]` per dimension, i.e. the 2^d level-`k−1`
//! children obtained by halving each coordinate. A fully-inner query
//! region then [`decompose`]s into O(surface × levels) maximal canonical
//! nodes instead of per-cell reads, and the planner descends to `g:`
//! headers only at the fringe.
//!
//! ## Key layout
//!
//! A node lives under [`PYRAMID_PREFIX`]: `p:` + one level byte + the
//! order-preserving coordinate encoding (the same
//! [`codec::encode_key_i64`] the `g:` keys use). `p:` (0x70) sorts
//! between `m:` (0x6D) and `s:` (0x73), so on a
//! [`ShardedKv`](../../dgf_kvstore/struct.ShardedKv.html) whose
//! boundaries partition the `g:` space every pyramid key routes to the
//! *last* shard together with `m:view`, staged `s:` keys, and the
//! transaction manifest — the single-shard commit-point atomicity of
//! DESIGN.md §13 is preserved with no router change. Level 0 is not
//! stored separately: [`NodeRef::store_key`] maps a level-0 node to its
//! `g:` leaf key.
//!
//! ## The canonical merge tree
//!
//! Neumaier-compensated merges are *not* bitwise-associative, so a
//! decomposed answer can only be bit-identical to flat enumeration if
//! both paths fold through the **same merge tree**. That tree is defined
//! once, here: the state of node `(k, c)` is the fold of its *present*
//! children's states, in odometer order ([`child_coords`]), starting
//! from `AggSet::new_states()`; the state of a leaf is its decoded
//! header. Maintenance ([`DgfIndex`](crate::DgfIndex) staging,
//! [`rebuild_all`]) materializes exactly this recursion, and the flat
//! planner strategies re-play it client-side (`fold_levels`) before
//! touching the query accumulator — so reading a pre-computed `p:` node
//! yields the same bits as folding its leaves on the fly, by
//! construction rather than by numerical accident.
//!
//! ```
//! use dgf_core::pyramid::{decompose, NodeRef};
//!
//! // A 2-d inner box of 8×8 cells aligned to the level-2 grid of a
//! // two-level pyramid decomposes into four level-2 nodes — not 64
//! // leaf reads. (A taller pyramid would cover it with one node.)
//! let items = decompose(&[(0, 7), (8, 15)], 2);
//! assert_eq!(items.len(), 4);
//! assert!(items.iter().all(|n| n.level == 2));
//! assert_eq!(items[0], NodeRef { level: 2, coords: vec![0, 2] });
//! // A misaligned box keeps coarse nodes in its interior and descends
//! // to finer levels (ultimately `g:` leaves) only at the fringe.
//! let fringe = decompose(&[(1, 8), (1, 8)], 4);
//! assert!(fringe.iter().any(|n| n.level == 2));
//! assert!(fringe.iter().any(|n| n.level == 0));
//! assert_eq!(
//!     fringe.iter().map(|n| n.cell_count()).sum::<u128>(),
//!     64
//! );
//! ```

use std::collections::BTreeMap;

use dgf_common::codec;
use dgf_common::{DgfError, Result};
use dgf_kvstore::KvStore;
use dgf_query::{AggSet, AggState};

use crate::gfu::{GfuKey, GfuValue, GFU_PREFIX};

/// Key prefix for pyramid node entries in the key-value store. Sorts
/// above every `g:` leaf and below the staged `s:` keys, so range
/// partitions built over the leaf space route all pyramid traffic to
/// the metadata shard.
pub const PYRAMID_PREFIX: &[u8] = b"p:";

/// Default pyramid height above the leaves. Each level halves every
/// coordinate, so 12 levels summarize up to 4096 cells per dimension
/// under one root-level node — enough for the 10⁶–10⁸ cell grids the
/// ROADMAP targets while keeping maintenance's dirty-parent chains
/// short.
pub const DEFAULT_PYRAMID_LEVELS: u8 = 12;

/// Dimensionalities above this would fan out `2^d` children per node;
/// the pyramid is disabled (never built, never consulted) for wider
/// grids.
pub const MAX_PYRAMID_ARITY: usize = 16;

/// Store key of the level-`level` pyramid node at `coords`:
/// `p:` + level byte + order-preserving coordinate encoding. Callers
/// use [`NodeRef::store_key`] for level 0, which lives at the `g:`
/// leaf key instead.
pub fn pyramid_key(level: u8, coords: &[i64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(PYRAMID_PREFIX.len() + 1 + 8 * coords.len());
    buf.extend_from_slice(PYRAMID_PREFIX);
    buf.push(level);
    for c in coords {
        codec::encode_key_i64(&mut buf, *c);
    }
    buf
}

/// Store key of the node at (`level`, `coords`): the `g:` leaf key for
/// level 0, the `p:` node key otherwise.
pub fn level_key(level: u8, coords: &[i64]) -> Vec<u8> {
    if level == 0 {
        GfuKey::new(coords.to_vec()).encode()
    } else {
        pyramid_key(level, coords)
    }
}

/// Level-`(k+1)` coordinates of the node containing a level-`k` node at
/// `coords`: floor-halve every coordinate (`div_euclid`, so negative
/// grids nest correctly).
pub fn parent_coords(coords: &[i64]) -> Vec<i64> {
    coords.iter().map(|c| c.div_euclid(2)).collect()
}

/// The 2^d level-`(k-1)` children of a level-`k` node at `coords`, in
/// **odometer order**: ascending offset bitmask with dimension 0 most
/// significant. This is the canonical fold order of the merge tree —
/// maintenance and the planner's client-side fold must both use it.
pub fn child_coords(coords: &[i64]) -> Vec<Vec<i64>> {
    let d = coords.len();
    (0..1usize << d)
        .map(|mask| {
            coords
                .iter()
                .enumerate()
                .map(|(j, c)| 2 * c + ((mask >> (d - 1 - j)) & 1) as i64)
                .collect()
        })
        .collect()
}

/// One node of the decomposition: a level and its coordinates. Level 0
/// is a single grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRef {
    /// Pyramid level; 0 is the `g:` leaf layer.
    pub level: u8,
    /// Node coordinates at that level.
    pub coords: Vec<i64>,
}

impl NodeRef {
    /// The store key this node is read from (`g:` leaf for level 0,
    /// `p:` node otherwise).
    pub fn store_key(&self) -> Vec<u8> {
        level_key(self.level, &self.coords)
    }

    /// Number of leaf cells this node summarizes: `2^(level·d)`.
    pub fn cell_count(&self) -> u128 {
        1u128 << (self.level as u32 * self.coords.len() as u32)
    }
}

/// Inclusive per-dimension leaf-cell box of the node at (`level`, `c`),
/// in i128 to dodge overflow at the top levels.
fn node_box(level: u8, c: i64) -> (i128, i128) {
    let w = 1i128 << level;
    let lo = c as i128 * w;
    (lo, lo + w - 1)
}

/// Decompose an inclusive inner box (`(lo, hi)` leaf cells per
/// dimension) into maximal canonical nodes of a pyramid `top` levels
/// high. The result partitions the box exactly: every cell is under
/// exactly one returned node. Nodes are emitted in depth-first odometer
/// order — the **canonical item order** both planner paths merge in.
/// An empty box (any `lo > hi`) decomposes to nothing.
pub fn decompose(inner: &[(i64, i64)], top: u8) -> Vec<NodeRef> {
    if inner.iter().any(|(lo, hi)| lo > hi) {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Odometer over the top-level nodes overlapping the box.
    let w = 1i64 << top;
    let lo: Vec<i64> = inner.iter().map(|(l, _)| l.div_euclid(w)).collect();
    let hi: Vec<i64> = inner.iter().map(|(_, h)| h.div_euclid(w)).collect();
    let mut coord = lo.clone();
    loop {
        visit(&mut out, inner, top, &coord);
        let mut advanced = false;
        for d in (0..coord.len()).rev() {
            if coord[d] < hi[d] {
                coord[d] += 1;
                for (c, l) in coord[d + 1..].iter_mut().zip(&lo[d + 1..]) {
                    *c = *l;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    out
}

fn visit(out: &mut Vec<NodeRef>, inner: &[(i64, i64)], level: u8, coords: &[i64]) {
    let mut contained = true;
    for (d, c) in coords.iter().enumerate() {
        let (lo, hi) = node_box(level, *c);
        let (ql, qh) = (inner[d].0 as i128, inner[d].1 as i128);
        if hi < ql || lo > qh {
            return; // disjoint
        }
        if lo < ql || hi > qh {
            contained = false;
        }
    }
    if contained {
        out.push(NodeRef {
            level,
            coords: coords.to_vec(),
        });
        return;
    }
    // A level-0 node is one cell: always contained or disjoint, so the
    // recursion bottoms out before reaching here with level == 0.
    debug_assert!(level > 0, "partial overlap on a single cell");
    for child in child_coords(coords) {
        visit(out, inner, level - 1, &child);
    }
}

/// Re-play the canonical merge tree client-side: given the present
/// leaves of an inner box (coordinates → aggregate states, e.g. the
/// query-order picked states the planner buffers), fold each level
/// bottom-up and return all `top + 1` level tables.
///
/// Iterating level `k−1` in `BTreeMap` (lexicographic) order and
/// grouping by parent is order-exact: lexicographic order restricted to
/// one parent's children *is* their odometer order, and grouping is
/// insensitive to the interleaving of different parents' children. The
/// first child folds into a fresh `new_states()` accumulator — the same
/// identity-start fold maintenance uses — so `levels[k][c]` is bitwise
/// the stored state of node `(k, c)` whenever all leaves under it are
/// present in `leaves`.
pub(crate) fn fold_levels(
    leaves: BTreeMap<Vec<i64>, Vec<AggState>>,
    top: u8,
    set: &AggSet,
) -> Result<Vec<BTreeMap<Vec<i64>, Vec<AggState>>>> {
    let mut levels = Vec::with_capacity(top as usize + 1);
    levels.push(leaves);
    for k in 1..=top as usize {
        let mut up: BTreeMap<Vec<i64>, Vec<AggState>> = BTreeMap::new();
        for (coord, states) in &levels[k - 1] {
            let p = parent_coords(coord);
            match up.get_mut(&p) {
                Some(acc) => set.merge(acc, states)?,
                None => {
                    let mut acc = set.new_states();
                    set.merge(&mut acc, states)?;
                    up.insert(p, acc);
                }
            }
        }
        levels.push(up);
    }
    Ok(levels)
}

/// Fold one node's children (in the caller-supplied canonical order)
/// into a fresh accumulator. `children` yields `Ok(None)` for absent
/// children, which are skipped; a node with no present children does
/// not exist (`Ok(None)`). This is the single definition of a stored
/// node's value — incremental staging and [`rebuild_all`] both call it.
pub fn fold_node(
    set: &AggSet,
    children: impl IntoIterator<Item = Result<Option<(Vec<AggState>, u64)>>>,
) -> Result<Option<(Vec<AggState>, u64)>> {
    let mut states = set.new_states();
    let mut count = 0u64;
    let mut present = false;
    for child in children {
        if let Some((cs, cc)) = child? {
            set.merge(&mut states, &cs)?;
            count += cc;
            present = true;
        }
    }
    Ok(present.then_some((states, count)))
}

/// Encoded `m:pyramid` metadata value: the pyramid height.
pub fn encode_meta(levels: u8) -> Vec<u8> {
    vec![levels]
}

/// Decode the `m:pyramid` metadata value.
pub fn decode_meta(bytes: &[u8]) -> Result<u8> {
    bytes
        .first()
        .copied()
        .ok_or_else(|| DgfError::Corrupt("empty m:pyramid value".into()))
}

/// Build every pyramid node from the `g:` leaves currently in `kv`,
/// bottom-up, writing `p:` keys directly (no staging). This is the
/// offline backfill/bootstrap path — benches and migrations of
/// pre-pyramid stores use it; live maintenance goes through the staged
/// commit in `DgfIndex` instead. Returns the number of nodes written.
///
/// The folds are exactly the canonical merge tree ([`fold_node`] per
/// node, children in [`child_coords`] order), so a store backfilled
/// here is bit-identical to one maintained incrementally.
pub fn rebuild_all(kv: &dyn KvStore, arity: usize, levels: u8, set: &AggSet) -> Result<u64> {
    let pairs = kv.scan_prefix(GFU_PREFIX)?;
    let mut table: BTreeMap<Vec<i64>, (Vec<AggState>, u64)> = BTreeMap::new();
    for (k, v) in &pairs {
        let key = GfuKey::decode(k, arity)?;
        let value = GfuValue::decode(v)?;
        let states = set.decode_states(&value.header)?;
        table.insert(key.cells, (states, value.record_count));
    }
    let mut written = 0u64;
    for level in 1..=levels {
        let mut up: BTreeMap<Vec<i64>, (Vec<AggState>, u64)> = BTreeMap::new();
        // Parent coordinates are not monotone in child lexicographic
        // order, so sort before deduplicating.
        let mut parents: Vec<Vec<i64>> = table.keys().map(|c| parent_coords(c)).collect();
        parents.sort();
        parents.dedup();
        for parent in parents {
            let folded = fold_node(
                set,
                child_coords(&parent)
                    .iter()
                    .map(|c| Ok(table.get(c).cloned())),
            )?;
            if let Some((states, count)) = folded {
                let node = GfuValue {
                    header: AggSet::encode_states(&states),
                    slices: Vec::new(),
                    record_count: count,
                };
                kv.put(&pyramid_key(level, &parent), &node.encode())?;
                written += 1;
                up.insert(parent, (states, count));
            }
        }
        table = up;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::Value;

    #[test]
    fn pyramid_keys_sort_between_meta_and_staged() {
        let p = pyramid_key(3, &[1, 2]);
        assert!(p.as_slice() > &b"m:view"[..]);
        assert!(p.as_slice() < &b"s:"[..]);
        assert!(p.as_slice() > GfuKey::new(vec![i64::MAX, i64::MAX]).encode().as_slice());
    }

    #[test]
    fn level_zero_key_is_the_leaf_key() {
        assert_eq!(level_key(0, &[7, 13]), GfuKey::new(vec![7, 13]).encode());
        assert_ne!(level_key(1, &[7, 13]), GfuKey::new(vec![7, 13]).encode());
    }

    #[test]
    fn children_are_odometer_ordered_and_invert_parent() {
        let kids = child_coords(&[1, -2]);
        assert_eq!(kids.len(), 4);
        assert_eq!(kids[0], vec![2, -4]);
        assert_eq!(kids[1], vec![2, -3]);
        assert_eq!(kids[2], vec![3, -4]);
        assert_eq!(kids[3], vec![3, -3]);
        for k in &kids {
            assert_eq!(parent_coords(k), vec![1, -2]);
        }
        // Odometer order == lexicographic order of the child coords.
        let mut sorted = kids.clone();
        sorted.sort();
        assert_eq!(sorted, kids);
    }

    #[test]
    fn negative_coordinates_nest_with_floor_division() {
        assert_eq!(parent_coords(&[-1]), vec![-1]);
        assert_eq!(parent_coords(&[-2]), vec![-1]);
        assert!(child_coords(&[-1]).contains(&vec![-1]));
        assert!(child_coords(&[-1]).contains(&vec![-2]));
    }

    #[test]
    fn decompose_partitions_the_box_exactly() {
        // Sweep misaligned boxes; every cell must be covered exactly once.
        for (lo0, hi0, lo1, hi1) in [(0, 15, 0, 15), (1, 14, 3, 9), (-5, 6, -8, -1), (2, 2, 5, 5)] {
            let inner = [(lo0, hi0), (lo1, hi1)];
            let items = decompose(&inner, 3);
            let mut seen = std::collections::HashSet::new();
            for n in &items {
                let boxes: Vec<(i128, i128)> =
                    n.coords.iter().map(|c| node_box(n.level, *c)).collect();
                for x in boxes[0].0..=boxes[0].1 {
                    for y in boxes[1].0..=boxes[1].1 {
                        assert!(
                            x >= lo0 as i128 && x <= hi0 as i128,
                            "node leaks outside the box"
                        );
                        assert!(y >= lo1 as i128 && y <= hi1 as i128);
                        assert!(seen.insert((x, y)), "cell covered twice");
                    }
                }
            }
            let want = (hi0 - lo0 + 1) as usize * (hi1 - lo1 + 1) as usize;
            assert_eq!(seen.len(), want, "box {inner:?} not fully covered");
        }
    }

    #[test]
    fn decompose_is_polylog_on_aligned_boxes() {
        // 4096 cells decompose into 1 node when perfectly aligned...
        assert_eq!(decompose(&[(0, 63), (0, 63)], 6).len(), 1);
        // ...and into O(surface · levels) nodes when shifted by one.
        let shifted = decompose(&[(1, 64), (1, 64)], 6);
        assert!(shifted.len() < 400, "got {}", shifted.len());
        assert_eq!(shifted.iter().map(|n| n.cell_count()).sum::<u128>(), 4096);
    }

    #[test]
    fn decompose_empty_box_is_empty() {
        assert!(decompose(&[(3, 2)], 4).is_empty());
        assert!(decompose(&[(0, 5), (7, 1)], 4).is_empty());
    }

    #[test]
    fn meta_round_trips() {
        assert_eq!(decode_meta(&encode_meta(12)).unwrap(), 12);
        assert!(decode_meta(&[]).is_err());
    }

    #[test]
    fn fold_levels_matches_fold_node_per_parent() {
        // Two present leaves under one parent, one absent: the folded
        // level-1 state must be bitwise the fold_node of the same kids.
        let set = AggSet::bind(
            &[dgf_query::AggFunc::Sum("v".into())],
            &std::sync::Arc::new(dgf_common::Schema::from_pairs(&[(
                "v",
                dgf_common::ValueType::Float,
            )])),
        )
        .unwrap();
        let leaf = |x: f64| {
            let mut s = set.new_states();
            set.update(
                &mut s,
                &vec![Value::Float(x)],
                &std::sync::Arc::new(dgf_common::Schema::from_pairs(&[(
                    "v",
                    dgf_common::ValueType::Float,
                )])),
            )
            .unwrap();
            s
        };
        let mut leaves = BTreeMap::new();
        leaves.insert(vec![0i64], leaf(0.1));
        leaves.insert(vec![1i64], leaf(0.2));
        let levels = fold_levels(leaves.clone(), 1, &set).unwrap();
        let via_node = fold_node(
            &set,
            child_coords(&[0]).iter().map(|c| {
                Ok(leaves.get(c).map(|s| (s.clone(), 1u64)))
            }),
        )
        .unwrap()
        .unwrap();
        assert_eq!(levels[1].get(&vec![0i64]).unwrap(), &via_node.0);
    }
}
