//! # dgf-core
//!
//! **DGFIndex** — the paper's primary contribution: a distributed grid
//! file index for multidimensional range queries over Hive-style tables.
//!
//! * [`policy`] — the splitting policy: per-dimension `min`/`interval`
//!   standardization into grid cells.
//! * [`gfu`] — grid file units: order-preserving keys, headers of
//!   pre-computed additive aggregates, Slice locations.
//! * [`index`] — construction (a MapReduce job that reorganizes the table
//!   into per-GFU Slices) and incremental, rebuild-free appends.
//! * [`plan`] — query planning: inner/boundary region decomposition,
//!   header-based answering of the inner region, split filtering, and
//!   per-split Slice range lists. Cell fetches ride contiguous key-range
//!   scans rather than per-cell round trips (see [`plan::PlanStrategy`]).
//! * [`cache`] — the epoch-tagged GFU header cache that lets repeated
//!   queries plan without touching the key-value store.
//! * [`pyramid`] — the hierarchical aggregate pyramid: coarser-level
//!   headers above the grid so a fully-inner region is answered from
//!   O(polylog) canonical nodes instead of per-cell header reads
//!   (see [`plan::PlanStrategy::Pyramid`]).
//! * [`sidecar`] — sub-slice pruning from per-slice sidecar indexes
//!   (zone maps + hierarchical bitmaps), feeding row-group admission
//!   sets and residual row bitmaps into the boundary scan.
//! * [`engine`] — the [`DgfEngine`] implementing the common
//!   [`dgf_query::Engine`] interface.
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use dgf_core::{DgfIndex, DgfEngine, SplittingPolicy, DimPolicy};
//! # use dgf_kvstore::MemKvStore;
//! # use dgf_query::{AggFunc, Engine, Query, Predicate, ColumnRange};
//! # use dgf_common::Value;
//! # fn demo(ctx: Arc<dgf_hive::HiveContext>, meter: dgf_hive::TableRef) -> dgf_common::Result<()> {
//! let policy = SplittingPolicy::new(vec![
//!     DimPolicy::int("user_id", 0, 1000),
//!     DimPolicy::int("region_id", 0, 1),
//!     DimPolicy::date("ts", 15706, 1),
//! ])?;
//! let (index, report) = DgfIndex::build(
//!     ctx,
//!     meter,
//!     policy,
//!     vec![AggFunc::Sum("power_consumed".into())],
//!     Arc::new(MemKvStore::new()),
//!     "dgf_meter",
//! )?;
//! println!("built {} GFUs in {:?}", report.index_entries, report.build_time);
//! let run = DgfEngine::new(Arc::new(index)).run(&Query::Aggregate {
//!     aggs: vec![AggFunc::Sum("power_consumed".into())],
//!     predicate: Predicate::all()
//!         .and("user_id", ColumnRange::half_open(Value::Int(100), Value::Int(5000)))
//!         .and("ts", ColumnRange::half_open(Value::Date(15706), Value::Date(15736))),
//! })?;
//! println!("answer: {}", run.result);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod advisor;
pub mod cache;
pub mod engine;
pub mod fresh;
pub mod gfu;
pub mod index;
pub mod maintain;
pub mod plan;
pub mod policy;
pub mod pyramid;
pub mod sidecar;
pub mod txn;
pub mod view;

pub use advisor::{collect_stats, recommend_policy, AdvisorConfig, DimStats, Recommendation};
pub use cache::{CacheStats, GfuHeaderCache, DEFAULT_HEADER_CACHE_CAPACITY};
pub use engine::DgfEngine;
pub use fresh::{FreshCell, FreshSource};
pub use gfu::{Extents, GfuKey, GfuValue, SliceLoc};
pub use index::{all_gfus, default_precompute, DgfIndex, IndexOptions, SlicePlacement};
pub use maintain::{CellHeat, MaintenanceConfig, MaintenanceReport, Maintainer};
pub use plan::{DgfPlan, PlanStrategy};
pub use pyramid::{NodeRef, DEFAULT_PYRAMID_LEVELS, PYRAMID_PREFIX};
pub use sidecar::PruneOutcome;
pub use txn::{TxnManifest, TxnState};
pub use view::ReadView;
pub use policy::{DimPolicy, DimScale, DimSpan, SplittingPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{Schema, TempDir, Value, ValueType};
    use dgf_format::FileFormat;
    use dgf_hive::{HiveContext, ScanEngine, TableRef};
    use dgf_kvstore::MemKvStore;
    use dgf_mapreduce::MrEngine;
    use dgf_query::{AggFunc, ColumnRange, Engine, Predicate, Query};
    use dgf_storage::{HdfsConfig, SimHdfs};
    use std::sync::Arc;

    fn setup(block: u64) -> (TempDir, Arc<HiveContext>) {
        let t = TempDir::new("dgfcore").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: block,
                replication: 1,
            },
        )
        .unwrap();
        (t, HiveContext::new(h, MrEngine::new(4)))
    }

    fn figure5_table(ctx: &Arc<HiveContext>) -> TableRef {
        let schema = Arc::new(Schema::from_pairs(&[
            ("A", ValueType::Int),
            ("B", ValueType::Int),
            ("C", ValueType::Float),
        ]));
        let tab = ctx.create_table("fig5", schema, FileFormat::Text).unwrap();
        ctx.load_rows(&tab, &index::paper_figure5_rows(), 1).unwrap();
        tab
    }

    fn build_figure5(ctx: &Arc<HiveContext>) -> Arc<DgfIndex> {
        let tab = figure5_table(ctx);
        let (idx, report) = DgfIndex::build(
            Arc::clone(ctx),
            tab,
            index::paper_figure5_policy(),
            vec![AggFunc::Sum("C".into())],
            Arc::new(MemKvStore::new()),
            "dgf_fig5",
        )
        .unwrap();
        // Figure 6: 9 records land in exactly 8 GFUs (7_13 holds two).
        assert_eq!(report.index_entries, 8);
        Arc::new(idx)
    }

    #[test]
    fn figure6_construction_matches_paper() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        let gfus = all_gfus(idx.kv.as_ref(), 2).unwrap();
        assert_eq!(gfus.len(), 8);
        // Cell (2,1) = paper key "7_13": records (7,12,1.2)? No — B=12 is
        // cell (12-11)/2 = 0 → key 7_11. Key 7_13 holds (9,14,0.8) and
        // (8,13,0.2): cells A=(9-1)/3=2,(8-1)/3=2; B=(14-11)/2=1,(13-11)/2=1.
        let (_, v) = gfus
            .iter()
            .find(|(k, _)| k.cells == vec![2, 1])
            .expect("GFU 7_13 exists");
        assert_eq!(v.record_count, 2);
        assert_eq!(v.slices.len(), 1);
        // Pre-computed sum(C) = 0.8 + 0.2 = 1.0 (paper Figure 6).
        let set = dgf_query::AggSet::bind(
            &[AggFunc::Sum("C".into())],
            &idx.base.schema,
        )
        .unwrap();
        let states = set.decode_states(&v.header).unwrap();
        assert_eq!(set.finalize(&states)[0], Value::Float(1.0));
    }

    #[test]
    fn listing2_query_matches_paper_semantics() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        // Listing 2: SELECT SUM(C) WHERE A in [5,12) AND B in [12,16).
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("C".into())],
            predicate: Predicate::all()
                .and("A", ColumnRange::half_open(Value::Int(5), Value::Int(12)))
                .and("B", ColumnRange::half_open(Value::Int(12), Value::Int(16))),
        };
        // Matching rows: (5,18)? no B. (7,12,1.2) ✓, (9,14,0.8) ✓,
        // (11,16)? B=16 excluded. (8,13,0.2) ✓ → 2.2.
        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        assert!(run
            .result
            .approx_eq(&dgf_query::QueryResult::Scalars(vec![Value::Float(2.2)]), 1e-9));
        // The inner region (paper: I = {7<=A<10, 13<=B<15}) is answered
        // from the header: GFU (2,1) is inner.
        let plan = idx.plan(&q, true).unwrap();
        assert_eq!(plan.inner_gfus, 1);
        assert_eq!(plan.inner_records, 2);
    }

    #[test]
    fn no_precompute_reads_all_query_gfus() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("C".into())],
            predicate: Predicate::all()
                .and("A", ColumnRange::half_open(Value::Int(5), Value::Int(12)))
                .and("B", ColumnRange::half_open(Value::Int(12), Value::Int(16))),
        };
        let with = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        let without = DgfEngine::new(Arc::clone(&idx))
            .without_precompute()
            .run(&q)
            .unwrap();
        assert!(with.result.approx_eq(&without.result, 1e-9));
        assert!(without.stats.data_records_read > with.stats.data_records_read);
    }

    #[test]
    fn unsupported_aggregate_falls_back_to_slices() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        // avg(C) is not pre-computed: headers unusable, result still right.
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Avg("C".into())],
            predicate: Predicate::all()
                .and("A", ColumnRange::half_open(Value::Int(5), Value::Int(12)))
                .and("B", ColumnRange::half_open(Value::Int(12), Value::Int(16))),
        };
        let plan = idx.plan(&q, true).unwrap();
        assert_eq!(plan.inner_gfus, 0);
        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        let expected = (1.2 + 0.8 + 0.2) / 3.0;
        assert!(run.result.approx_eq(
            &dgf_query::QueryResult::Scalars(vec![Value::Float(expected)]),
            1e-9
        ));
    }

    #[test]
    fn predicate_on_unindexed_column_disables_headers_but_stays_exact() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("C".into())],
            predicate: Predicate::all()
                .and("A", ColumnRange::half_open(Value::Int(5), Value::Int(12)))
                .and("C", ColumnRange::open(Value::Float(0.5), Value::Float(10.0))),
        };
        let plan = idx.plan(&q, true).unwrap();
        assert_eq!(plan.inner_gfus, 0, "C is not an index dimension");
        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        // A in [5,12): rows (5,18,.5)x (7,12,1.2)✓ (9,14,.8)✓ (11,16,1.3)✓ (8,13,.2)x
        assert!(run.result.approx_eq(
            &dgf_query::QueryResult::Scalars(vec![Value::Float(3.3)]),
            1e-9
        ));
    }

    #[test]
    fn partial_query_uses_extents() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        // Constrain only B: A falls back to stored extents.
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("C".into())],
            predicate: Predicate::all()
                .and("B", ColumnRange::half_open(Value::Int(11), Value::Int(13))),
        };
        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        // B in [11,13): rows (7,12,1.2),(2,11,0.5),(12,12,0.3),(8,13)? B=13 no.
        assert!(run.result.approx_eq(
            &dgf_query::QueryResult::Scalars(vec![Value::Float(2.0)]),
            1e-9
        ));
        // B-range sits on cell edges: everything is inner.
        let plan = idx.plan(&q, true).unwrap();
        assert!(plan.inner_gfus > 0);
        assert_eq!(plan.boundary_gfus, 0);
    }

    #[test]
    fn append_extends_index_without_rebuild() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        let before_entries = idx.gfu_count().unwrap();
        // New records: one lands in the existing GFU (2,1), one in a new
        // cell far away.
        idx.append(&[
            vec![Value::Int(9), Value::Int(13), Value::Float(0.5)],
            vec![Value::Int(100), Value::Int(30), Value::Float(9.9)],
        ])
        .unwrap();
        assert_eq!(idx.gfu_count().unwrap(), before_entries + 1);
        // The merged GFU now answers with the updated header.
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("C".into())],
            predicate: Predicate::all()
                .and("A", ColumnRange::half_open(Value::Int(7), Value::Int(10)))
                .and("B", ColumnRange::half_open(Value::Int(13), Value::Int(15))),
        };
        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        // Rows in that region: (9,14,0.8),(8,13,0.2),(9,13,0.5) = 1.5.
        assert!(run.result.approx_eq(
            &dgf_query::QueryResult::Scalars(vec![Value::Float(1.5)]),
            1e-9
        ));
        // Fully header-answered (region sits on cell edges).
        let plan = idx.plan(&q, true).unwrap();
        assert_eq!(plan.boundary_gfus, 0);
        // And the far-away record is reachable too.
        let q2 = Query::Aggregate {
            aggs: vec![AggFunc::Sum("C".into())],
            predicate: Predicate::all()
                .and("A", ColumnRange::eq(Value::Int(100))),
        };
        let run2 = DgfEngine::new(Arc::clone(&idx)).run(&q2).unwrap();
        assert!(run2.result.approx_eq(
            &dgf_query::QueryResult::Scalars(vec![Value::Float(9.9)]),
            1e-9
        ));
    }

    #[test]
    fn group_by_and_join_match_scan() {
        let (_t, ctx) = setup(512);
        // A larger random-ish table across several splits.
        let schema = Arc::new(Schema::from_pairs(&[
            ("user", ValueType::Int),
            ("region", ValueType::Int),
            ("day", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let tab = ctx.create_table("meter", schema, FileFormat::Text).unwrap();
        let rows: Vec<Vec<Value>> = (0..800)
            .map(|i| {
                vec![
                    Value::Int(i % 97),
                    Value::Int(i % 5),
                    Value::Int(i % 11),
                    Value::Float(((i * 7) % 100) as f64 / 4.0),
                ]
            })
            .collect();
        ctx.load_rows(&tab, &rows, 3).unwrap();
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user", 0, 10),
            DimPolicy::int("region", 0, 1),
            DimPolicy::int("day", 0, 1),
        ])
        .unwrap();
        let (idx, _) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&tab),
            policy,
            default_precompute("power"),
            Arc::new(MemKvStore::new()),
            "dgf_meter",
        )
        .unwrap();
        let idx = Arc::new(idx);

        let users_schema = Arc::new(Schema::from_pairs(&[
            ("user", ValueType::Int),
            ("name", ValueType::Str),
        ]));
        let users = ctx
            .create_table("users", users_schema, FileFormat::Text)
            .unwrap();
        let user_rows: Vec<Vec<Value>> = (0..97)
            .map(|i| vec![Value::Int(i), Value::Str(format!("u{i}"))])
            .collect();
        ctx.load_rows(&users, &user_rows, 1).unwrap();

        let pred = Predicate::all()
            .and("user", ColumnRange::half_open(Value::Int(13), Value::Int(57)))
            .and("day", ColumnRange::half_open(Value::Int(2), Value::Int(8)));
        let queries = vec![
            Query::GroupBy {
                key: "day".into(),
                aggs: vec![AggFunc::Sum("power".into()), AggFunc::Count],
                predicate: pred.clone(),
            },
            Query::Join {
                left_key: "user".into(),
                right_key: "user".into(),
                left_project: vec!["power".into()],
                right_project: vec!["name".into()],
                predicate: pred.clone(),
            },
            Query::Select {
                project: vec!["user".into(), "power".into()],
                predicate: pred,
            },
        ];
        for q in &queries {
            let scan = ScanEngine::new(Arc::clone(&ctx), Arc::clone(&tab))
                .with_right(Arc::clone(&users))
                .run(q)
                .unwrap();
            let dgf = DgfEngine::new(Arc::clone(&idx))
                .with_right(Arc::clone(&users))
                .run(q)
                .unwrap();
            assert!(
                dgf.result
                    .clone()
                    .normalized()
                    .approx_eq(&scan.result.clone().normalized(), 1e-9),
                "mismatch on {q:?}"
            );
            assert!(dgf.stats.data_records_read <= scan.stats.data_records_read);
        }
    }

    #[test]
    fn empty_table_and_empty_region() {
        let (_t, ctx) = setup(1 << 20);
        let schema = Arc::new(Schema::from_pairs(&[
            ("A", ValueType::Int),
            ("C", ValueType::Float),
        ]));
        let tab = ctx.create_table("empty", schema, FileFormat::Text).unwrap();
        ctx.load_rows(&tab, &[], 1).unwrap();
        let (idx, report) = DgfIndex::build(
            Arc::clone(&ctx),
            tab,
            SplittingPolicy::new(vec![DimPolicy::int("A", 0, 10)]).unwrap(),
            vec![AggFunc::Count],
            Arc::new(MemKvStore::new()),
            "dgf_empty",
        )
        .unwrap();
        assert_eq!(report.index_entries, 0);
        let idx = Arc::new(idx);
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all().and("A", ColumnRange::eq(Value::Int(5))),
        };
        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(0));
        // Region entirely outside the data extents.
        let (idx2, _) = {
            let schema = Arc::new(Schema::from_pairs(&[
                ("A", ValueType::Int),
                ("C", ValueType::Float),
            ]));
            let tab = ctx.create_table("one", schema, FileFormat::Text).unwrap();
            ctx.load_rows(&tab, &[vec![Value::Int(1), Value::Float(1.0)]], 1)
                .unwrap();
            DgfIndex::build(
                Arc::clone(&ctx),
                tab,
                SplittingPolicy::new(vec![DimPolicy::int("A", 0, 10)]).unwrap(),
                vec![AggFunc::Count],
                Arc::new(MemKvStore::new()),
                "dgf_one",
            )
            .unwrap()
        };
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all()
                .and("A", ColumnRange::half_open(Value::Int(500), Value::Int(600))),
        };
        let run = DgfEngine::new(Arc::new(idx2)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(0));
    }

    #[test]
    fn prefix_locality_placement_coalesces_time_ranges() {
        use dgf_format::ByteRange;
        // Many reducers: the scatter effect of hash placement grows with
        // the reducer count (one sorted run per reducer file).
        let t = TempDir::new("dgfcore-place").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 16 * 1024,
                replication: 1,
            },
        )
        .unwrap();
        let ctx = HiveContext::new(h, MrEngine::new(8));
        // Many days per user so the time series has many cells.
        let mut rows = Vec::new();
        for day in 0..40i64 {
            for user in 0..60i64 {
                rows.push(vec![
                    Value::Int(user),
                    Value::Int(day),
                    Value::Float((user + day) as f64),
                ]);
            }
        }
        let mk = |name: &str, placement| {
            let tab = ctx
                .create_table(&format!("meter_{name}"), 
                    Arc::new(Schema::from_pairs(&[
                        ("user", ValueType::Int),
                        ("day", ValueType::Int),
                        ("power", ValueType::Float),
                    ])), FileFormat::Text)
                .unwrap();
            ctx.load_rows(&tab, &rows, 8).unwrap();
            let policy = SplittingPolicy::new(vec![
                DimPolicy::int("user", 0, 10),
                DimPolicy::int("day", 0, 1),
            ])
            .unwrap();
            let (idx, _) = DgfIndex::build_with_placement(
                Arc::clone(&ctx),
                tab,
                policy,
                vec![],
                Arc::new(MemKvStore::new()),
                &format!("dgf_{name}"),
                placement,
            )
            .unwrap();
            Arc::new(idx)
        };
        let hashed = mk("hash", SlicePlacement::KeyHash);
        let local = mk("local", SlicePlacement::PrefixLocality { prefix_dims: 1 });

        // One user-cell over a long day range: locality packs the whole
        // time series contiguously, so ranges coalesce.
        let q = Query::Select {
            project: vec!["power".into()],
            predicate: Predicate::all()
                .and("user", ColumnRange::half_open(Value::Int(10), Value::Int(20)))
                .and("day", ColumnRange::half_open(Value::Int(0), Value::Int(40))),
        };
        let count_ranges = |idx: &Arc<DgfIndex>| -> usize {
            let plan = idx.plan(&q, true).unwrap();
            plan.inputs
                .iter()
                .map(|i| match i {
                    dgf_hive::ScanInput::TextRanges { ranges, .. } => ranges.len(),
                    _ => 1,
                })
                .sum()
        };
        let hash_ranges = count_ranges(&hashed);
        let local_ranges = count_ranges(&local);
        assert!(
            local_ranges * 4 <= hash_ranges,
            "locality {local_ranges} vs hash {hash_ranges} coalesced ranges"
        );
        // Same answers either way.
        let a = DgfEngine::new(hashed).run(&q).unwrap();
        let b = DgfEngine::new(local).run(&q).unwrap();
        assert!(a
            .result
            .normalized()
            .approx_eq(&b.result.normalized(), 1e-9));
        let _ = ByteRange::new(0, 0);

        // Invalid prefix_dims rejected.
        let schema2 = Arc::new(Schema::from_pairs(&[("a", ValueType::Int)]));
        let tab = ctx.create_table("one_dim", schema2, FileFormat::Text).unwrap();
        assert!(DgfIndex::build_with_placement(
            Arc::clone(&ctx),
            tab,
            SplittingPolicy::new(vec![DimPolicy::int("a", 0, 1)]).unwrap(),
            vec![],
            Arc::new(MemKvStore::new()),
            "dgf_bad_placement",
            SlicePlacement::PrefixLocality { prefix_dims: 1 },
        )
        .is_err());
    }

    #[test]
    fn rcfile_base_table_gets_rcfile_slices() {
        // The paper: "it is easy to extend DGFIndex to support other file
        // formats" — an RCFile base table yields RCFile reorganized data
        // with group-aligned Slices, and the skipping read path holds.
        let (_t, ctx) = setup(2048);
        let schema = Arc::new(Schema::from_pairs(&[
            ("user", ValueType::Int),
            ("day", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let mut desc = (*ctx
            .create_table("meter_rc", schema, FileFormat::RcFile)
            .unwrap())
        .clone();
        desc.rows_per_group = 16; // small groups: many per slice candidate
        let tab = Arc::new(desc);
        let rows: Vec<Vec<Value>> = (0..600)
            .map(|i| {
                vec![
                    Value::Int(i % 40),
                    Value::Int(i % 15),
                    Value::Float((i % 13) as f64),
                ]
            })
            .collect();
        ctx.load_rows(&tab, &rows, 3).unwrap();

        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user", 0, 8),
            DimPolicy::int("day", 0, 3),
        ])
        .unwrap();
        let (idx, report) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&tab),
            policy,
            vec![AggFunc::Sum("power".into()), AggFunc::Count],
            Arc::new(MemKvStore::new()),
            "dgf_rc",
        )
        .unwrap();
        assert_eq!(idx.data.format, FileFormat::RcFile);
        assert!(report.index_entries > 0);
        let idx = Arc::new(idx);

        // Slices are group-aligned: every slice boundary is a group offset.
        // The data directory also holds `.scx` sidecars, which are index
        // (not RCFile data) and have no group structure to check.
        for (path, _) in ctx.hdfs.list_files(&idx.data.location) {
            if dgf_format::is_sidecar_path(&path) {
                continue;
            }
            let offsets = dgf_format::read_group_offsets(&ctx.hdfs, &path).unwrap();
            let gfus = all_gfus(idx.kv.as_ref(), 2).unwrap();
            for (_, v) in &gfus {
                for s in v.slices.iter().filter(|s| s.file == path) {
                    assert!(
                        offsets.contains(&s.start),
                        "slice start {} is not a group offset in {path}",
                        s.start
                    );
                }
            }
        }

        // Queries agree with a scan, across shapes, and read less.
        let queries = vec![
            Query::Aggregate {
                aggs: vec![AggFunc::Sum("power".into()), AggFunc::Count],
                predicate: Predicate::all()
                    .and("user", ColumnRange::half_open(Value::Int(5), Value::Int(21)))
                    .and("day", ColumnRange::half_open(Value::Int(3), Value::Int(11))),
            },
            Query::GroupBy {
                key: "day".into(),
                aggs: vec![AggFunc::Count],
                predicate: Predicate::all()
                    .and("user", ColumnRange::half_open(Value::Int(0), Value::Int(16))),
            },
            Query::Select {
                project: vec!["user".into(), "power".into()],
                predicate: Predicate::all().and("day", ColumnRange::eq(Value::Int(7))),
            },
        ];
        for q in &queries {
            let truth = dgf_hive::ScanEngine::new(Arc::clone(&ctx), Arc::clone(&tab))
                .run(q)
                .unwrap();
            let got = DgfEngine::new(Arc::clone(&idx)).run(q).unwrap();
            assert!(
                got.result
                    .clone()
                    .normalized()
                    .approx_eq(&truth.result.clone().normalized(), 1e-9),
                "mismatch on {q:?}"
            );
            assert!(got.stats.data_records_read <= truth.stats.data_records_read);
        }

        // Incremental append works on the RC path too.
        idx.append(&[vec![Value::Int(3), Value::Int(3), Value::Float(99.0)]])
            .unwrap();
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Max("power".into())],
            predicate: Predicate::all().and("user", ColumnRange::eq(Value::Int(3))),
        };
        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Float(99.0));
    }

    #[test]
    fn stale_index_is_detected() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        };
        // Fresh: works.
        assert!(DgfEngine::new(Arc::clone(&idx)).run(&q).is_ok());
        // Load data behind the index's back: queries must fail loudly
        // instead of silently dropping the new records.
        ctx.append_file(
            &idx.base,
            "rogue-load",
            &[vec![Value::Int(1), Value::Int(11), Value::Float(1.0)]],
        )
        .unwrap();
        let err = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap_err();
        assert!(err.to_string().contains("stale"), "{err}");
        // Indexing the (already loaded) rows via append is not the fix —
        // append adds its own file. Rebuild-from-scratch or append-only
        // discipline; here we verify append keeps working and clears the
        // staleness only when the counts line up again.
        // (A fresh index over the same base sees everything.)
        let (idx2, _) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&idx.base),
            crate::index::paper_figure5_policy(),
            vec![AggFunc::Sum("C".into())],
            Arc::new(MemKvStore::new()),
            "dgf_fig5_rebuilt",
        )
        .unwrap();
        let run = DgfEngine::new(Arc::new(idx2)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(10));
    }

    #[test]
    fn repeated_plan_is_served_from_header_cache() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("C".into())],
            predicate: Predicate::all()
                .and("A", ColumnRange::half_open(Value::Int(5), Value::Int(12)))
                .and("B", ColumnRange::half_open(Value::Int(12), Value::Int(16))),
        };
        let before_first = idx.kv.stats().snapshot();
        let first = idx.plan(&q, true).unwrap();
        let first_delta = idx.kv.stats().snapshot().since(&before_first);
        // Cold cache: every cell misses, and the runs are actually scanned.
        assert_eq!(first.cache_hits, 0);
        assert!(first.cache_misses > 0);
        assert!(first_delta.scans > 0);

        let before_second = idx.kv.stats().snapshot();
        let second = idx.plan(&q, true).unwrap();
        let second_delta = idx.kv.stats().snapshot().since(&before_second);
        // Warm cache: the whole cell region (present cells and negative
        // entries alike) is answered from memory. The only store traffic
        // left is the two metadata reads every plan performs (freshness
        // and extents).
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.cache_hits, first.cache_hits + first.cache_misses);
        assert_eq!(second_delta.scans, 0);
        assert_eq!(second_delta.multi_gets, 0);
        assert_eq!(second_delta.gets, 2);
        // And the plan is the very same.
        assert_eq!(first.inputs, second.inputs);
        assert_eq!(first.inner_states, second.inner_states);
        assert_eq!(first.inner_gfus, second.inner_gfus);
        assert_eq!(first.boundary_gfus, second.boundary_gfus);
        assert_eq!(first.inner_records, second.inner_records);
        // Engine-level stats surface the cache counters.
        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        assert!(run.stats.index_cache_hits > 0);
        assert_eq!(run.stats.index_cache_misses, 0);
    }

    #[test]
    fn append_invalidates_header_cache() {
        let (_t, ctx) = setup(1 << 20);
        let idx = build_figure5(&ctx);
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("C".into())],
            predicate: Predicate::all()
                .and("A", ColumnRange::half_open(Value::Int(7), Value::Int(10)))
                .and("B", ColumnRange::half_open(Value::Int(13), Value::Int(15))),
        };
        // Warm the cache, then change the indexed data.
        let warm = idx.plan(&q, true).unwrap();
        assert_eq!(idx.plan(&q, true).unwrap().cache_misses, 0);
        let gen_before = idx.generation();
        idx.append(&[vec![Value::Int(9), Value::Int(13), Value::Float(0.5)]])
            .unwrap();
        assert!(idx.generation() > gen_before);

        // The post-append plan must not serve any pre-append entry: the
        // epoch rolled, so every probe misses.
        let fresh = idx.plan(&q, true).unwrap();
        assert_eq!(fresh.cache_hits, 0);
        assert!(fresh.cache_misses > 0);
        assert_eq!(fresh.inner_records, warm.inner_records + 1);

        // And it matches the cache-free point-get baseline field for
        // field, so nothing stale leaked into the answer.
        let baseline = idx
            .plan_with_strategy(&q, true, PlanStrategy::PointGets)
            .unwrap();
        assert_eq!(fresh.inputs, baseline.inputs);
        assert_eq!(fresh.inner_states, baseline.inner_states);
        assert_eq!(fresh.inner_gfus, baseline.inner_gfus);
        assert_eq!(fresh.boundary_gfus, baseline.boundary_gfus);
        assert_eq!(fresh.inner_records, baseline.inner_records);

        let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
        // Rows now in the region: (9,14,0.8),(8,13,0.2),(9,13,0.5).
        assert!(run.result.approx_eq(
            &dgf_query::QueryResult::Scalars(vec![Value::Float(1.5)]),
            1e-9
        ));
    }

    #[test]
    fn type_mismatch_rejected_at_build() {
        let (_t, ctx) = setup(1 << 20);
        let schema = Arc::new(Schema::from_pairs(&[("A", ValueType::Float)]));
        let tab = ctx.create_table("t", schema, FileFormat::Text).unwrap();
        let res = DgfIndex::build(
            Arc::clone(&ctx),
            tab,
            SplittingPolicy::new(vec![DimPolicy::int("A", 0, 1)]).unwrap(),
            vec![],
            Arc::new(MemKvStore::new()),
            "dgf_bad",
        );
        assert!(res.is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dgf_common::{FaultConfig, FaultPlan, RetryPolicy, Schema, TempDir, Value, ValueType};
    use dgf_format::FileFormat;
    use dgf_hive::HiveContext;
    use dgf_kvstore::{ChaosKv, KvStore, MemKvStore};
    use dgf_mapreduce::MrEngine;
    use dgf_query::{AggFunc, ColumnRange, Engine, Predicate, Query};
    use dgf_storage::{HdfsConfig, SimHdfs};
    use proptest::prelude::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// For an arbitrary 2-D grid, arbitrary data, and an arbitrary
        /// query rectangle, the engine's count/sum equal a brute-force
        /// fold, and the plan's inner-region record count never exceeds
        /// the number of matching records.
        #[test]
        fn random_grid_random_query_matches_brute_force(
            ia in 1i64..7,
            ib in 1i64..7,
            min_a in -5i64..5,
            rows in prop::collection::vec((0i64..40, 0i64..20, 0u32..1000), 1..120),
            qa in (0i64..40, 1i64..20),
            qb in (0i64..20, 1i64..10),
        ) {
            let t = TempDir::new("core-prop").unwrap();
            let h = SimHdfs::new(t.path(), HdfsConfig { block_size: 512, replication: 1 })
                .unwrap();
            let ctx = HiveContext::new(h, MrEngine::new(2));
            let schema = Arc::new(Schema::from_pairs(&[
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("v", ValueType::Float),
            ]));
            let table = ctx.create_table("t", schema, FileFormat::Text).unwrap();
            let data: Vec<Vec<Value>> = rows
                .iter()
                .map(|(a, b, v)| {
                    vec![Value::Int(*a), Value::Int(*b), Value::Float(*v as f64 / 8.0)]
                })
                .collect();
            ctx.load_rows(&table, &data, 2).unwrap();

            let policy = SplittingPolicy::new(vec![
                DimPolicy::int("a", min_a, ia),
                DimPolicy::int("b", 0, ib),
            ])
            .unwrap();
            let (idx, _) = DgfIndex::build(
                Arc::clone(&ctx),
                table,
                policy,
                vec![AggFunc::Count, AggFunc::Sum("v".into())],
                Arc::new(MemKvStore::new()),
                "dgf_prop",
            )
            .unwrap();
            let idx = Arc::new(idx);

            let (a_lo, a_w) = qa;
            let (b_lo, b_w) = qb;
            let pred = Predicate::all()
                .and("a", ColumnRange::half_open(Value::Int(a_lo), Value::Int(a_lo + a_w)))
                .and("b", ColumnRange::half_open(Value::Int(b_lo), Value::Int(b_lo + b_w)));
            let q = Query::Aggregate {
                aggs: vec![AggFunc::Count, AggFunc::Sum("v".into())],
                predicate: pred,
            };

            // Brute force.
            let matching: Vec<&(i64, i64, u32)> = rows
                .iter()
                .filter(|(a, b, _)| {
                    *a >= a_lo && *a < a_lo + a_w && *b >= b_lo && *b < b_lo + b_w
                })
                .collect();
            let expect_count = matching.len() as i64;
            let expect_sum: f64 = matching.iter().map(|(_, _, v)| *v as f64 / 8.0).sum();

            let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
            let vals = run.result.into_scalars();
            prop_assert_eq!(vals[0].clone(), Value::Int(expect_count));
            let got_sum = match &vals[1] {
                Value::Float(x) => *x,
                Value::Null => 0.0,
                other => return Err(TestCaseError::Fail(format!("{other:?}").into())),
            };
            prop_assert!((got_sum - expect_sum).abs() < 1e-6);

            // Plan invariants: inner records are matching records the
            // engine never reads; boundary reading covers the rest.
            let plan = idx.plan(&q, true).unwrap();
            prop_assert!(plan.inner_records <= expect_count as u64);
            prop_assert!(
                run.stats.data_records_read + plan.inner_records >= expect_count as u64
            );
        }

        /// The prefix-scan planner is a pure fetch optimization: for an
        /// arbitrary grid, arbitrary data, and an arbitrary query shape
        /// (full or partially specified rectangle, aggregation or select,
        /// headers on or off), its plan is identical — inputs, merged
        /// header states, and every counter — to the per-cell point-get
        /// baseline, cold and warm.
        #[test]
        fn prefix_scan_plans_equal_point_get_plans(
            ia in 1i64..7,
            ib in 1i64..7,
            min_a in -5i64..5,
            rows in prop::collection::vec((0i64..40, 0i64..20, 0u32..1000), 1..100),
            qa in (0i64..40, 1i64..20),
            qb in (0i64..20, 1i64..10),
            constrain_a in any::<bool>(),
            constrain_b in any::<bool>(),
            aggregate in any::<bool>(),
            use_headers in any::<bool>(),
        ) {
            let t = TempDir::new("core-prop-eq").unwrap();
            let h = SimHdfs::new(t.path(), HdfsConfig { block_size: 512, replication: 1 })
                .unwrap();
            let ctx = HiveContext::new(h, MrEngine::new(2));
            let schema = Arc::new(Schema::from_pairs(&[
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("v", ValueType::Float),
            ]));
            let table = ctx.create_table("t", schema, FileFormat::Text).unwrap();
            let data: Vec<Vec<Value>> = rows
                .iter()
                .map(|(a, b, v)| {
                    vec![Value::Int(*a), Value::Int(*b), Value::Float(*v as f64 / 8.0)]
                })
                .collect();
            ctx.load_rows(&table, &data, 2).unwrap();

            let policy = SplittingPolicy::new(vec![
                DimPolicy::int("a", min_a, ia),
                DimPolicy::int("b", 0, ib),
            ])
            .unwrap();
            let (idx, _) = DgfIndex::build(
                Arc::clone(&ctx),
                table,
                policy,
                vec![AggFunc::Count, AggFunc::Sum("v".into())],
                Arc::new(MemKvStore::new()),
                "dgf_prop_eq",
            )
            .unwrap();
            let idx = Arc::new(idx);

            // Partially specified rectangles exercise the full-extent
            // run folding; select queries exercise the headers-off path.
            let (a_lo, a_w) = qa;
            let (b_lo, b_w) = qb;
            let mut pred = Predicate::all();
            if constrain_a {
                pred = pred.and(
                    "a",
                    ColumnRange::half_open(Value::Int(a_lo), Value::Int(a_lo + a_w)),
                );
            }
            if constrain_b {
                pred = pred.and(
                    "b",
                    ColumnRange::half_open(Value::Int(b_lo), Value::Int(b_lo + b_w)),
                );
            }
            let q = if aggregate {
                Query::Aggregate {
                    aggs: vec![AggFunc::Count, AggFunc::Sum("v".into())],
                    predicate: pred,
                }
            } else {
                Query::Select {
                    project: vec!["a".into(), "v".into()],
                    predicate: pred,
                }
            };

            let base = idx
                .plan_with_strategy(&q, use_headers, PlanStrategy::PointGets)
                .unwrap();
            // The baseline never touches the cache.
            prop_assert_eq!(base.cache_hits, 0);
            prop_assert_eq!(base.cache_misses, 0);

            // Cold run, then warm run served from the header cache.
            let cold = idx
                .plan_with_strategy(&q, use_headers, PlanStrategy::PrefixScan)
                .unwrap();
            prop_assert_eq!(cold.cache_hits, 0);
            let warm = idx
                .plan_with_strategy(&q, use_headers, PlanStrategy::PrefixScan)
                .unwrap();
            prop_assert_eq!(warm.cache_misses, 0);
            prop_assert_eq!(warm.cache_hits, cold.cache_misses);

            for plan in [&cold, &warm] {
                prop_assert_eq!(&base.inputs, &plan.inputs);
                prop_assert_eq!(&base.chosen_splits, &plan.chosen_splits);
                prop_assert_eq!(&base.inner_states, &plan.inner_states);
                prop_assert_eq!(base.inner_gfus, plan.inner_gfus);
                prop_assert_eq!(base.boundary_gfus, plan.boundary_gfus);
                prop_assert_eq!(base.inner_records, plan.inner_records);
                prop_assert_eq!(base.splits_total, plan.splits_total);
                prop_assert_eq!(base.splits_read, plan.splits_read);
            }
        }

        /// Transient faults are invisible above the retry layer: an
        /// index built and queried through a chaos key-value store and a
        /// fault-injecting file system (generous retry budget) plans and
        /// answers identically to a fault-free twin over the same data —
        /// and the accounting closes exactly: every injected fault shows
        /// up as one absorbed retry, in the kv or file-system counters.
        #[test]
        fn transient_faults_leave_plans_and_answers_identical(
            ia in 1i64..7,
            ib in 1i64..7,
            min_a in -5i64..5,
            rows in prop::collection::vec((0i64..40, 0i64..20, 0u32..1000), 1..80),
            qa in (0i64..40, 1i64..20),
            qb in (0i64..20, 1i64..10),
            seed in 1u64..1_000_000,
        ) {
            let data: Vec<Vec<Value>> = rows
                .iter()
                .map(|(a, b, v)| {
                    vec![Value::Int(*a), Value::Int(*b), Value::Float(*v as f64 / 8.0)]
                })
                .collect();
            let policy = || {
                SplittingPolicy::new(vec![
                    DimPolicy::int("a", min_a, ia),
                    DimPolicy::int("b", 0, ib),
                ])
                .unwrap()
            };
            let build_world = |plan: Option<&Arc<FaultPlan>>| {
                let t = TempDir::new("core-prop-fault").unwrap();
                let h =
                    SimHdfs::new(t.path(), HdfsConfig { block_size: 512, replication: 1 })
                        .unwrap();
                let ctx = HiveContext::new(h, MrEngine::new(2));
                let schema = Arc::new(Schema::from_pairs(&[
                    ("a", ValueType::Int),
                    ("b", ValueType::Int),
                    ("v", ValueType::Float),
                ]));
                let table = ctx.create_table("t", schema, FileFormat::Text).unwrap();
                ctx.load_rows(&table, &data, 2).unwrap();
                let inner: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
                let (kv, options): (Arc<dyn KvStore>, IndexOptions) = match plan {
                    Some(p) => {
                        ctx.hdfs.enable_faults(Arc::clone(p), RetryPolicy::fast(64));
                        (
                            Arc::new(ChaosKv::new(Arc::clone(&inner), Arc::clone(p))),
                            IndexOptions {
                                retry: RetryPolicy::fast(64),
                                ..IndexOptions::default()
                            },
                        )
                    }
                    None => (inner, IndexOptions::default()),
                };
                let (idx, _) = DgfIndex::build_with_options(
                    Arc::clone(&ctx),
                    table,
                    policy(),
                    vec![AggFunc::Count, AggFunc::Sum("v".into())],
                    kv,
                    "dgf_prop_fault",
                    options,
                )
                .unwrap();
                (t, ctx, Arc::new(idx))
            };

            let (_t1, clean_ctx, clean) = build_world(None);
            let plan = Arc::new(FaultPlan::new(FaultConfig::transient(seed, 0.4)));
            let (_t2, noisy_ctx, noisy) = build_world(Some(&plan));

            let (a_lo, a_w) = qa;
            let (b_lo, b_w) = qb;
            let q = Query::Aggregate {
                aggs: vec![AggFunc::Count, AggFunc::Sum("v".into())],
                predicate: Predicate::all()
                    .and("a", ColumnRange::half_open(Value::Int(a_lo), Value::Int(a_lo + a_w)))
                    .and("b", ColumnRange::half_open(Value::Int(b_lo), Value::Int(b_lo + b_w))),
            };

            // Plans are identical field by field (cold, so both hit the
            // store — the chaos one through its retry loops).
            let base = clean
                .plan_with_strategy(&q, true, PlanStrategy::PrefixScan)
                .unwrap();
            let chaos = noisy
                .plan_with_strategy(&q, true, PlanStrategy::PrefixScan)
                .unwrap();
            prop_assert_eq!(&base.inputs, &chaos.inputs);
            prop_assert_eq!(&base.chosen_splits, &chaos.chosen_splits);
            prop_assert_eq!(&base.inner_states, &chaos.inner_states);
            prop_assert_eq!(base.inner_gfus, chaos.inner_gfus);
            prop_assert_eq!(base.boundary_gfus, chaos.boundary_gfus);
            prop_assert_eq!(base.inner_records, chaos.inner_records);
            prop_assert_eq!(base.splits_total, chaos.splits_total);
            prop_assert_eq!(base.splits_read, chaos.splits_read);
            prop_assert_eq!(base.retries_absorbed, 0);

            // Answers are identical too (same plan, same fold order).
            let clean_run = DgfEngine::new(Arc::clone(&clean)).run(&q).unwrap();
            let noisy_run = DgfEngine::new(Arc::clone(&noisy)).run(&q).unwrap();
            prop_assert!(noisy_run.result.approx_eq(&clean_run.result, 1e-12));
            prop_assert_eq!(clean_run.stats.retries_absorbed, 0);
            prop_assert_eq!(clean_run.stats.splits_read, noisy_run.stats.splits_read);
            prop_assert_eq!(
                clean_run.stats.data_records_read,
                noisy_run.stats.data_records_read
            );

            // The noise was real, and every injected fault was absorbed
            // by exactly one counted retry somewhere in the stack.
            let injected = plan.faults_injected();
            prop_assert!(injected > 0, "schedule produced no faults");
            let absorbed = noisy.kv.stats().retries_absorbed.load(Ordering::Relaxed)
                + noisy_ctx.hdfs.stats().retries.get();
            prop_assert_eq!(absorbed, injected);
            let clean_absorbed = clean.kv.stats().retries_absorbed.load(Ordering::Relaxed)
                + clean_ctx.hdfs.stats().retries.get();
            prop_assert_eq!(clean_absorbed, 0);
        }
    }
}
