//! Sidecar-driven sub-slice pruning (DESIGN.md §15).
//!
//! The planner hands each boundary slice's byte ranges plus the query
//! predicate to [`prune`], which consults the slice's decoded
//! [`SliceSidecar`] and returns a row-group admission set: groups whose
//! zone maps or hierarchical bitmaps prove no row can match are dropped
//! outright (their bytes are never fetched), and groups admitted through
//! a bitmap column carry a **residual bitmap** of candidate rows that the
//! scan intersects into its batches before the predicate kernels run.
//!
//! Pruning is strictly conservative: a group is dropped or a row cleared
//! only when the sidecar *proves* it cannot satisfy the predicate, so
//! the scan's answer is bit-identical to the unpruned scan — the kernels
//! still evaluate the full predicate on every surviving row. A missing,
//! stale, or corrupt sidecar simply skips pruning (the caller falls back
//! to the plain byte-range scan), never affecting correctness.

use std::collections::HashMap;
use std::ops::Bound;

use dgf_common::{Result, Value};
use dgf_format::sidecar::{ColumnZone, ValueBitmap};
use dgf_format::{Bitmap, ByteRange, SliceSidecar};
use dgf_query::{ColumnRange, Predicate};

/// The admission set [`prune`] computed for one slice file.
#[derive(Debug, Default)]
pub struct PruneOutcome {
    /// Group offset → candidate rows, for every admitted group. Groups
    /// inside the scanned ranges but absent here were pruned; admitted
    /// groups no bitmap term restricted carry an all-ones bitmap.
    pub row_filter: HashMap<u64, Bitmap>,
    /// Row groups whose start lies inside the scanned ranges.
    pub groups_total: u64,
    /// Groups pruned outright (zone maps or level-1 bitmaps).
    pub groups_pruned: u64,
    /// Bytes of those pruned groups — data the scan never fetches.
    pub bytes_skipped: u64,
    /// Whether pruning changed anything: at least one group dropped or
    /// one residual bitmap narrower than its group. When false the
    /// caller keeps the plain unfiltered scan input.
    pub restricted: bool,
}

/// One predicate term resolved against the sidecar: the column's zone
/// ordinal plus, when the column is bitmap-indexed and the term can use
/// it, the matching value bitmaps and their level-1 group union.
struct Term<'a> {
    column: usize,
    range: &'a ColumnRange,
    /// `Some` when every row matching the term is covered by a bitmap
    /// union: the column is bitmap-indexed and the term excludes nulls.
    bitmaps: Option<BitmapTerm<'a>>,
}

struct BitmapTerm<'a> {
    /// Level 1: groups containing *any* matching value.
    any_groups: Bitmap,
    /// The matching values' hierarchical bitmaps.
    values: Vec<&'a ValueBitmap>,
}

/// Whether a group's zone map admits rows possibly satisfying `r`.
fn zone_admits(zone: &ColumnZone, r: &ColumnRange) -> bool {
    let non_null_overlap = match &zone.min_max {
        None => false,
        Some((min, max)) => {
            let lo_ok = match &r.low {
                Bound::Unbounded => true,
                Bound::Included(b) => max >= b,
                Bound::Excluded(b) => max > b,
            };
            let hi_ok = match &r.high {
                Bound::Unbounded => true,
                Bound::Included(b) => min <= b,
                Bound::Excluded(b) => min < b,
            };
            lo_ok && hi_ok
        }
    };
    // Null rows only satisfy the fully unbounded interval.
    non_null_overlap || (zone.null_count > 0 && r.contains(&Value::Null))
}

/// Compute the row-group admission set of one slice file.
///
/// `ranges` are the slice byte ranges the scan would read (the reader
/// admits a group when its start offset lies inside a range — the same
/// rule `RcReader::with_group_ranges` applies, so pruning and scanning
/// agree on which groups are in play).
pub fn prune(sidecar: &SliceSidecar, ranges: &[ByteRange], predicate: &Predicate) -> Result<PruneOutcome> {
    let mut out = PruneOutcome::default();
    // Resolve predicate terms against the sidecar's column list. Terms
    // on columns the sidecar does not know lose their pruning power but
    // cost nothing — the kernels still apply them.
    let mut terms: Vec<Term<'_>> = Vec::new();
    for name in predicate.columns() {
        let Some(range) = predicate.range_of(name) else { continue };
        let Some(column) = sidecar.columns.iter().position(|c| c == name) else {
            continue;
        };
        let bitmaps = match sidecar.bitmap_column(column) {
            // A term admitting nulls cannot be answered by value bitmaps
            // (nulls are never bitmap-indexed), but such a term is the
            // unbounded interval — trivial — so nothing is lost.
            Some(bc) if !range.contains(&Value::Null) => {
                let values: Vec<&ValueBitmap> = bc
                    .values
                    .iter()
                    .filter(|vb| range.contains(&vb.value))
                    .collect();
                let mut any_groups = Bitmap::new();
                for vb in &values {
                    any_groups.union_with(&vb.groups.decompress()?);
                }
                Some(BitmapTerm { any_groups, values })
            }
            _ => None,
        };
        terms.push(Term {
            column,
            range,
            bitmaps,
        });
    }

    for (ordinal, group) in sidecar.groups.iter().enumerate() {
        let in_range = ranges
            .iter()
            .any(|r| group.offset >= r.start && group.offset < r.end);
        if !in_range {
            continue;
        }
        out.groups_total += 1;
        // Zone maps first (any column), then the level-1 bitmaps: a
        // group surviving both may still shrink to an empty residual.
        let mut admit = terms.iter().all(|t| {
            zone_admits(&group.zones[t.column], t.range)
                && t.bitmaps
                    .as_ref()
                    .is_none_or(|b| b.any_groups.get(ordinal))
        });
        let mut residual: Option<Bitmap> = None;
        if admit {
            for t in &terms {
                let Some(bt) = &t.bitmaps else { continue };
                // Level 0: candidate rows = union of the matching
                // values' row bitmaps inside this group.
                let mut rows = Bitmap::new();
                for vb in &bt.values {
                    for (o, bits) in &vb.rows {
                        if *o as usize == ordinal {
                            rows.union_with(&bits.decompress()?);
                        }
                    }
                }
                match &mut residual {
                    None => residual = Some(rows),
                    Some(acc) => acc.intersect_with(&rows),
                }
                if residual.as_ref().is_some_and(|r| r.is_empty()) {
                    admit = false;
                    break;
                }
            }
        }
        if !admit {
            out.groups_pruned += 1;
            out.bytes_skipped += group.bytes;
            out.restricted = true;
            continue;
        }
        let bitmap = match residual {
            Some(r) => {
                if r.rank(group.rows as usize) < group.rows as usize {
                    out.restricted = true;
                }
                r
            }
            // No bitmap term restricted this group: admit every row.
            None => (0..group.rows as usize).collect(),
        };
        out.row_filter.insert(group.offset, bitmap);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_format::sidecar::SidecarBuilder;

    /// Two groups of five rows: ids 0..5 / 5..10, region = id % 3,
    /// power = id as float with one null at id 4.
    fn sidecar() -> SliceSidecar {
        let mut b = SidecarBuilder::with_cardinality_cap(
            vec!["id".into(), "region".into(), "power".into()],
            4,
        );
        for i in 0..10i64 {
            b.observe(&vec![
                Value::Int(i),
                Value::Int(i % 3),
                if i == 4 {
                    Value::Null
                } else {
                    Value::Float(i as f64)
                },
            ]);
            if i == 4 {
                b.finish_group(0, 100);
            }
        }
        b.finish_group(100, 120);
        b.finish(220)
    }

    fn whole() -> Vec<ByteRange> {
        vec![ByteRange::new(0, 220)]
    }

    #[test]
    fn zone_maps_prune_disjoint_groups() {
        let sc = sidecar();
        let p = Predicate::all().and(
            "id",
            ColumnRange::half_open(Value::Int(7), Value::Int(20)),
        );
        let out = prune(&sc, &whole(), &p).unwrap();
        assert_eq!(out.groups_total, 2);
        assert_eq!(out.groups_pruned, 1);
        assert_eq!(out.bytes_skipped, 100);
        assert!(out.restricted);
        // Group 1 admitted with all rows (id has no bitmaps: 10 distinct
        // values over the cap of 4).
        assert_eq!(out.row_filter[&100].count(), 5);
    }

    #[test]
    fn bitmaps_leave_residual_rows() {
        let sc = sidecar();
        let p = Predicate::all().and("region", ColumnRange::eq(Value::Int(1)));
        let out = prune(&sc, &whole(), &p).unwrap();
        // Region 1 appears in both groups (ids 1,4,7) → nothing pruned,
        // but the residuals restrict rows.
        assert_eq!(out.groups_pruned, 0);
        assert!(out.restricted);
        assert_eq!(
            out.row_filter[&0].iter().collect::<Vec<_>>(),
            vec![1, 4] // ids 1 and 4
        );
        assert_eq!(
            out.row_filter[&100].iter().collect::<Vec<_>>(),
            vec![2] // id 7 = row 2 of group 1
        );
    }

    #[test]
    fn empty_bitmap_intersection_prunes_group() {
        let sc = sidecar();
        // region == 1 AND id in [5,6): group 1 zone admits, but region 1
        // in group 1 is only id 7 — the zone map on id can't see that,
        // and neither term alone empties the group; only the pair of
        // residuals... which pruning applies per-term, so the admitted
        // residual keeps row 2 and the kernel drops it. Use a value
        // absent from group 0 instead: region==2 ∧ id<2 → group 0 holds
        // region 2 only at id 2.
        let p = Predicate::all()
            .and("region", ColumnRange::eq(Value::Int(2)))
            .and("id", ColumnRange::half_open(Value::Int(0), Value::Int(2)));
        let out = prune(&sc, &whole(), &p).unwrap();
        // Group 1 pruned by the id zone map; group 0 admitted with the
        // region-2 residual {2}.
        assert_eq!(out.groups_pruned, 1);
        assert_eq!(out.row_filter[&0].iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn nullable_term_keeps_null_rows() {
        let sc = sidecar();
        // power < 1.0 excludes nulls (SQL semantics): group 0 admits
        // rows via zones; residuals don't apply (power isn't low-card...
        // actually it is under cap 4? 9 distinct floats > 4 → dropped).
        let p = Predicate::all().and(
            "power",
            ColumnRange::half_open(Value::Float(0.0), Value::Float(1.0)),
        );
        let out = prune(&sc, &whole(), &p).unwrap();
        assert_eq!(out.groups_pruned, 1); // group 1: power 5..10
        assert_eq!(out.row_filter[&0].count(), 5);
    }

    #[test]
    fn trivial_predicate_restricts_nothing() {
        let sc = sidecar();
        let out = prune(&sc, &whole(), &Predicate::all()).unwrap();
        assert!(!out.restricted);
        assert_eq!(out.groups_pruned, 0);
        assert_eq!(out.row_filter.len(), 2);
    }

    #[test]
    fn ranges_scope_the_admission_set() {
        let sc = sidecar();
        let p = Predicate::all().and("region", ColumnRange::eq(Value::Int(0)));
        // Only the second group's range is scanned.
        let out = prune(&sc, &[ByteRange::new(100, 220)], &p).unwrap();
        assert_eq!(out.groups_total, 1);
        assert!(!out.row_filter.contains_key(&0));
        assert_eq!(
            out.row_filter[&100].iter().collect::<Vec<_>>(),
            vec![1, 4] // ids 6 and 9
        );
    }

    #[test]
    fn unknown_column_is_ignored() {
        let sc = sidecar();
        let p = Predicate::all().and("nope", ColumnRange::eq(Value::Int(1)));
        let out = prune(&sc, &whole(), &p).unwrap();
        assert!(!out.restricted);
        assert_eq!(out.row_filter.len(), 2);
    }

    #[test]
    fn all_null_group_prunes_under_bounded_range() {
        let mut b = SidecarBuilder::new(vec!["v".into()]);
        b.observe(&vec![Value::Null]);
        b.finish_group(0, 50);
        b.observe(&vec![Value::Int(3)]);
        b.finish_group(50, 60);
        let sc = b.finish(110);
        let p = Predicate::all().and("v", ColumnRange::eq(Value::Int(3)));
        let out = prune(&sc, &[ByteRange::new(0, 110)], &p).unwrap();
        assert_eq!(out.groups_pruned, 1);
        assert_eq!(out.bytes_skipped, 50);
        assert!(out.row_filter.contains_key(&50));
    }
}
