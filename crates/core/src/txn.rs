//! Crash-atomic commit protocol for index construction and appends.
//!
//! HAIL-style atomic publication for the reorganize job: reducers write
//! their Slice files under a **staging directory** (a sibling of the
//! data table, so half-written files never appear in split enumeration)
//! and their merged GFU values under **staged keys** (`s:` + live key).
//! Nothing live is touched until a single [`TxnManifest`] record flips
//! to [`TxnState::Committed`] — that one `put` is the commit point.
//! After it, applying the transaction (renaming staged files into the
//! data directory, copying staged values to their live keys, putting the
//! precomputed metadata) is **idempotent**: every step checks whether it
//! already happened, so a crash at any point during apply or cleanup is
//! repaired by simply re-applying on the next open.
//!
//! Before the commit point the inverse holds: rolling back (deleting
//! staged keys, the staging directory, and any base-table delta file the
//! transaction wrote but never acknowledged) restores the previous epoch
//! exactly. [`DgfIndex::open`](crate::index::DgfIndex::open) runs this
//! recovery unconditionally, so a crash at *any* site leaves the index
//! either fully at the old epoch or fully at the new one.

use dgf_common::codec::{self, Decoder};
use dgf_common::{DgfError, Result};

/// Key of the (single) transaction manifest. One in-flight transaction
/// at a time: the index is a single-writer structure (the paper's load
/// path appends new time cells serially).
pub const TXN_MANIFEST_KEY: &[u8] = b"t:manifest";

/// Prefix under which a transaction stages its merged GFU values and
/// metadata puts before commit. Disjoint from the live `g:`/`m:` spaces.
pub const STAGE_PREFIX: &[u8] = b"s:";

/// The staged twin of a live key, qualified by the staging transaction
/// id: `s:` + big-endian txn + live key. The qualifier keeps staged keys
/// of transaction N invisible to a reader overlaying transaction M's
/// staged state, and big-endian order means a prefix scan of one
/// transaction's staged keys yields live-key order (so the overlay scan
/// in plan assembly is a sorted two-list merge).
pub fn stage_key(txn: u64, live: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(STAGE_PREFIX.len() + 8 + live.len());
    k.extend_from_slice(STAGE_PREFIX);
    k.extend_from_slice(&txn.to_be_bytes());
    k.extend_from_slice(live);
    k
}

/// The scan prefix covering every staged key of one transaction.
pub fn stage_prefix(txn: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(STAGE_PREFIX.len() + 8);
    k.extend_from_slice(STAGE_PREFIX);
    k.extend_from_slice(&txn.to_be_bytes());
    k
}

/// The live key a staged key publishes to.
pub fn live_key(staged: &[u8]) -> &[u8] {
    match staged.strip_prefix(STAGE_PREFIX) {
        Some(rest) if rest.len() >= 8 => &rest[8..],
        Some(rest) => rest,
        None => staged,
    }
}

/// Lifecycle of a transaction, recorded in its manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Declared: the transaction may have written a base-table delta
    /// file and staging state, but its outcome is still undecided.
    /// Recovery rolls it back.
    Intent,
    /// All staging state is complete and the manifest records the full
    /// apply recipe — but the decision has not been made. Recovery still
    /// rolls back.
    Prepared,
    /// The commit point has passed. Recovery re-applies (idempotently)
    /// and cleans up.
    Committed,
}

impl TxnState {
    fn code(self) -> u32 {
        match self {
            TxnState::Intent => 0,
            TxnState::Prepared => 1,
            TxnState::Committed => 2,
        }
    }

    fn from_code(c: u32) -> Result<TxnState> {
        match c {
            0 => Ok(TxnState::Intent),
            1 => Ok(TxnState::Prepared),
            2 => Ok(TxnState::Committed),
            n => Err(DgfError::Corrupt(format!("unknown txn state {n}"))),
        }
    }
}

/// The durable record of one reorganize transaction. Written at Intent
/// (before any other write of the transaction), completed at Prepared,
/// and flipped to Committed by the commit-point `put`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnManifest {
    /// Current lifecycle state.
    pub state: TxnState,
    /// Transaction id — the index generation the reorganize ran at.
    pub txn: u64,
    /// HDFS directory holding the transaction's staged Slice files.
    pub staging_dir: String,
    /// Base-table delta file written by this transaction (appends only);
    /// deleted on rollback because the append was never acknowledged.
    pub base_delta: Option<String>,
    /// Staged-file → live-file renames to perform at apply.
    pub renames: Vec<(String, String)>,
    /// Staged keys (`s:`-prefixed) whose values publish to live keys.
    pub staged_keys: Vec<Vec<u8>>,
    /// Precomputed post-commit metadata puts (policy, placement,
    /// aggregates, file count, merged extents). Plain puts so re-applying
    /// never double-merges.
    pub meta_puts: Vec<(Vec<u8>, Vec<u8>)>,
    /// Encoded [`ReadView`](crate::view::ReadView) (with `pending` set)
    /// that apply publishes under `m:view` right after the file renames
    /// and *before* the staged-key publishes: flipping the view is the
    /// visibility pivot for live readers, and a pending view tells them
    /// to overlay this transaction's staged keys. Empty = none (legacy).
    pub view: Vec<u8>,
    /// Live keys this transaction retires after publishing its staged
    /// state (cell re-split/merge drops the old granularity's `g:`/`p:`
    /// keys). Deletes run *after* the view put and staged publishes, so
    /// pending-view readers have already switched to the new cells;
    /// re-deleting on recovery is a no-op. Encoded as an optional tail
    /// so pre-maintenance manifests decode unchanged.
    pub deletes: Vec<Vec<u8>>,
}

impl TxnManifest {
    /// A fresh Intent-state manifest.
    pub fn intent(txn: u64, staging_dir: String, base_delta: Option<String>) -> TxnManifest {
        TxnManifest {
            state: TxnState::Intent,
            txn,
            staging_dir,
            base_delta,
            renames: Vec::new(),
            staged_keys: Vec::new(),
            meta_puts: Vec::new(),
            view: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Serialize for the key-value store.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, self.state.code());
        codec::put_u64(&mut buf, self.txn);
        codec::put_str(&mut buf, &self.staging_dir);
        codec::put_str(&mut buf, self.base_delta.as_deref().unwrap_or(""));
        codec::put_u32(&mut buf, self.renames.len() as u32);
        for (from, to) in &self.renames {
            codec::put_str(&mut buf, from);
            codec::put_str(&mut buf, to);
        }
        codec::put_u32(&mut buf, self.staged_keys.len() as u32);
        for k in &self.staged_keys {
            codec::put_bytes(&mut buf, k);
        }
        codec::put_u32(&mut buf, self.meta_puts.len() as u32);
        for (k, v) in &self.meta_puts {
            codec::put_bytes(&mut buf, k);
            codec::put_bytes(&mut buf, v);
        }
        codec::put_bytes(&mut buf, &self.view);
        // Optional tail: only present when the transaction retires live
        // keys, so manifests without deletes stay byte-identical to the
        // pre-maintenance encoding.
        if !self.deletes.is_empty() {
            codec::put_u32(&mut buf, self.deletes.len() as u32);
            for k in &self.deletes {
                codec::put_bytes(&mut buf, k);
            }
        }
        buf
    }

    /// Decode a stored manifest.
    pub fn decode(bytes: &[u8]) -> Result<TxnManifest> {
        let mut d = Decoder::new(bytes);
        let state = TxnState::from_code(d.u32()?)?;
        let txn = d.u64()?;
        let staging_dir = d.str()?.to_owned();
        let base_delta = match d.str()? {
            "" => None,
            p => Some(p.to_owned()),
        };
        let mut renames = Vec::new();
        for _ in 0..d.u32()? {
            let from = d.str()?.to_owned();
            let to = d.str()?.to_owned();
            renames.push((from, to));
        }
        let mut staged_keys = Vec::new();
        for _ in 0..d.u32()? {
            staged_keys.push(d.bytes()?.to_vec());
        }
        let mut meta_puts = Vec::new();
        for _ in 0..d.u32()? {
            let k = d.bytes()?.to_vec();
            let v = d.bytes()?.to_vec();
            meta_puts.push((k, v));
        }
        let view = d.bytes()?.to_vec();
        let mut deletes = Vec::new();
        if d.remaining() != 0 {
            for _ in 0..d.u32()? {
                deletes.push(d.bytes()?.to_vec());
            }
            if d.remaining() != 0 {
                return Err(DgfError::Corrupt("txn manifest has trailing bytes".into()));
            }
        }
        Ok(TxnManifest {
            state,
            txn,
            staging_dir,
            base_delta,
            renames,
            staged_keys,
            meta_puts,
            view,
            deletes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let mut m = TxnManifest::intent(7, "/warehouse/idx/data_staging/txn-00007".into(), None);
        assert_eq!(TxnManifest::decode(&m.encode()).unwrap(), m);

        m.state = TxnState::Prepared;
        m.base_delta = Some("/warehouse/base/delta-00007".into());
        m.renames = vec![("/a/x".into(), "/b/x".into()), ("/a/y".into(), "/b/y".into())];
        m.staged_keys = vec![stage_key(7, b"g:k1"), stage_key(7, b"g:k2")];
        m.meta_puts = vec![(b"m:files".to_vec(), 3u64.to_le_bytes().to_vec())];
        m.view = vec![0xDE, 0xAD];
        let back = TxnManifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);

        m.state = TxnState::Committed;
        assert_eq!(TxnManifest::decode(&m.encode()).unwrap().state, TxnState::Committed);

        // The optional deletes tail round-trips, and a manifest without
        // deletes stays byte-identical to the legacy encoding.
        let legacy = m.encode();
        m.deletes = vec![b"g:old1".to_vec(), b"p:old2".to_vec()];
        let back = TxnManifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        m.deletes.clear();
        assert_eq!(m.encode(), legacy);
    }

    #[test]
    fn stage_and_live_keys_invert() {
        let live = b"g:\x00\x01";
        let staged = stage_key(42, live);
        assert!(staged.starts_with(STAGE_PREFIX));
        assert!(staged.starts_with(&stage_prefix(42)));
        assert!(!staged.starts_with(&stage_prefix(41)));
        assert_eq!(live_key(&staged), live);
    }

    #[test]
    fn stage_keys_preserve_live_key_order_within_a_txn() {
        let lives: Vec<&[u8]> = vec![b"g:\x00", b"g:\x01", b"g:\x01\x02", b"m:extent"];
        let staged: Vec<Vec<u8>> = lives.iter().map(|l| stage_key(9, l)).collect();
        for w in staged.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn corrupt_manifests_are_rejected() {
        assert!(TxnManifest::decode(b"").is_err());
        let mut good = TxnManifest::intent(1, "/s".into(), None).encode();
        good.push(0xAB);
        assert!(TxnManifest::decode(&good).is_err());
        let mut bad_state = TxnManifest::intent(1, "/s".into(), None).encode();
        bad_state[..4].copy_from_slice(&9u32.to_le_bytes());
        // State byte order depends on the codec; just require an error.
        assert!(TxnManifest::decode(&bad_state).is_err());
    }
}
