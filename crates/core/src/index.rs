//! DGFIndex construction (paper §4.2, Algorithms 1 and 2) and incremental
//! extension.
//!
//! Construction is a MapReduce job that **reorganizes** the base table:
//! mappers standardize each record's indexed dimensions into a GFUKey and
//! emit `(GFUKey, line)`; each reducer writes the records of every key it
//! owns contiguously as a *Slice* of its output file, folds the
//! pre-computed aggregates into the GFU header, and puts the
//! `GFUKey → GFUValue` pair into the key-value store. Because the shuffle
//! groups and sorts by key, a Slice always holds exactly the records of
//! one GFU.
//!
//! The time dimension makes the index append-only: new meter data lands in
//! new time cells, so `append` runs the same job over only the new file
//! and merges the resulting GFU entries into the store — no rebuild, and
//! write throughput is unaffected (paper §1 contribution iii).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgf_common::{format_row, parse_row, DgfError, Result, Row, Stopwatch, Value};
use dgf_format::{FileFormat, RcReader, TextReader, TextWriter};
use dgf_hive::{BuildReport, HiveContext, TableRef};
use dgf_kvstore::KvStore;
use dgf_mapreduce::JobReport;
use dgf_query::{AggFunc, AggSet};
use dgf_storage::FileSplit;

use crate::cache::{GfuHeaderCache, DEFAULT_HEADER_CACHE_CAPACITY};
use crate::gfu::{
    Extents, GfuKey, GfuValue, GFU_PREFIX, META_AGGS_KEY, META_EXTENT_KEY, META_FILES_KEY,
    META_PLACEMENT_KEY, META_POLICY_KEY,
};
use crate::policy::SplittingPolicy;

/// How GFU Slices are placed across reducer output files — the paper's §8
/// "optimal placement of Slices" future work.
///
/// The shuffle sorts each reducer's keys, so slices of *consecutive* keys
/// in the same reducer are physically adjacent. Placement chooses which
/// keys share a reducer:
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicePlacement {
    /// Hash of the full GFUKey (the Hadoop default). Neighboring cells
    /// scatter across files; range queries touch many slices in many
    /// places.
    KeyHash,
    /// Hash of only the first `prefix_dims` coordinates: every cell
    /// sharing that prefix lands in one reducer, where the sort makes
    /// their slices contiguous. For a `(user, region, time)` grid with
    /// `prefix_dims = 2`, the whole time series of a user-cell × region is
    /// one contiguous byte run — a time-range query coalesces to a single
    /// sequential read per touched prefix.
    PrefixLocality {
        /// How many leading dimensions define the locality group.
        prefix_dims: usize,
    },
}

impl SlicePlacement {
    fn encode(&self) -> Vec<u8> {
        match self {
            SlicePlacement::KeyHash => vec![0, 0, 0, 0],
            SlicePlacement::PrefixLocality { prefix_dims } => {
                (*prefix_dims as u32).to_le_bytes().to_vec()
            }
        }
    }

    fn decode(bytes: &[u8]) -> SlicePlacement {
        let mut b = [0u8; 4];
        b[..bytes.len().min(4)].copy_from_slice(&bytes[..bytes.len().min(4)]);
        match u32::from_le_bytes(b) {
            0 => SlicePlacement::KeyHash,
            n => SlicePlacement::PrefixLocality {
                prefix_dims: n as usize,
            },
        }
    }
}

/// Number of metadata keys a DGFIndex keeps in its store (policy,
/// aggregates, extents, placement, indexed-file count).
const META_KEY_COUNT: u64 = 5;

/// A built DGFIndex: the reorganized data table plus the GFU store.
///
/// Per the paper, each table can have only one DGFIndex, because the index
/// *is* a physical reorganization of the table.
pub struct DgfIndex {
    /// The warehouse context.
    pub ctx: Arc<HiveContext>,
    /// The original table (source of schema and of ground-truth scans).
    pub base: TableRef,
    /// The reorganized, slice-aligned data table (TextFile — the only
    /// format DGFIndex supports in the paper).
    pub data: TableRef,
    /// The grid policy.
    pub policy: SplittingPolicy,
    /// Pre-computed aggregate list (may be empty).
    pub aggs: Vec<AggFunc>,
    /// The GFU key-value store (HBase in the paper).
    pub kv: Arc<dyn KvStore>,
    /// Slice placement policy used by construction and appends.
    pub placement: SlicePlacement,
    generation: AtomicU64,
    header_cache: GfuHeaderCache,
}

impl DgfIndex {
    /// Build a DGFIndex over `base` (paper Listing 3: `CREATE INDEX …
    /// IDXPROPERTIES(policy, precompute)`).
    pub fn build(
        ctx: Arc<HiveContext>,
        base: TableRef,
        policy: SplittingPolicy,
        aggs: Vec<AggFunc>,
        kv: Arc<dyn KvStore>,
        index_name: &str,
    ) -> Result<(DgfIndex, BuildReport)> {
        Self::build_with_placement(
            ctx,
            base,
            policy,
            aggs,
            kv,
            index_name,
            SlicePlacement::KeyHash,
        )
    }

    /// [`build`](Self::build) with an explicit Slice-placement policy.
    pub fn build_with_placement(
        ctx: Arc<HiveContext>,
        base: TableRef,
        policy: SplittingPolicy,
        aggs: Vec<AggFunc>,
        kv: Arc<dyn KvStore>,
        index_name: &str,
        placement: SlicePlacement,
    ) -> Result<(DgfIndex, BuildReport)> {
        // Validate dimensions against the schema.
        for d in policy.dims() {
            let t = base.schema.type_of(&d.name)?;
            if t != d.vtype {
                return Err(DgfError::Index(format!(
                    "dimension {:?} is {t} in the table but {} in the policy",
                    d.name, d.vtype
                )));
            }
        }
        // Validate aggregates bind (and are additive by construction).
        AggSet::bind(&aggs, &base.schema)?;

        // The reorganized data keeps the base table's format — the paper
        // implements TextFile and notes other formats are a straightforward
        // extension; RCFile slices are aligned to whole row groups.
        let data = ctx.create_table_at(
            &format!("{index_name}_data"),
            base.schema.clone(),
            base.format,
            &format!("/warehouse/{index_name}/data"),
        )?;
        if let SlicePlacement::PrefixLocality { prefix_dims } = placement {
            if prefix_dims == 0 || prefix_dims >= policy.arity() {
                return Err(DgfError::Index(format!(
                    "prefix_dims must be in 1..{} for this grid",
                    policy.arity()
                )));
            }
        }
        let index = DgfIndex {
            ctx,
            base,
            data,
            policy,
            aggs,
            kv,
            placement,
            generation: AtomicU64::new(0),
            header_cache: GfuHeaderCache::new(DEFAULT_HEADER_CACHE_CAPACITY),
        };
        let watch = Stopwatch::start();
        let splits = index.ctx.table_splits(&index.base);
        let job = index.reorganize(splits, index.base.format)?;
        let report = BuildReport {
            build_time: watch.elapsed(),
            index_size_bytes: index.kv.logical_size_bytes(),
            index_entries: index.kv.len() as u64 - META_KEY_COUNT,
        };
        let _ = job;
        Ok((index, report))
    }

    /// Reattach to an index persisted in `kv` (e.g. a
    /// [`LogKvStore`](dgf_kvstore::LogKvStore) after a restart): the
    /// splitting policy and extents load from the store's metadata; the
    /// reorganized data table must still be registered under
    /// `<index_name>_data`. `aggs` must match the pre-computed list the
    /// index was built with (UDFs cannot be reconstructed from their
    /// names alone, so the caller supplies them; the stored keys are
    /// verified).
    pub fn open(
        ctx: Arc<HiveContext>,
        base: TableRef,
        kv: Arc<dyn KvStore>,
        index_name: &str,
        aggs: Vec<AggFunc>,
    ) -> Result<DgfIndex> {
        let policy_bytes = kv
            .get(META_POLICY_KEY)?
            .ok_or_else(|| DgfError::Index("store holds no DGFIndex metadata".into()))?;
        let policy = SplittingPolicy::decode(&policy_bytes)?;
        let stored_keys = kv
            .get(META_AGGS_KEY)?
            .map(|b| String::from_utf8_lossy(&b).into_owned())
            .unwrap_or_default();
        let supplied_keys = aggs
            .iter()
            .map(|a| a.key())
            .collect::<Vec<_>>()
            .join("\n");
        if stored_keys != supplied_keys {
            return Err(DgfError::Index(format!(
                "pre-computed aggregates mismatch: stored {stored_keys:?}, supplied {supplied_keys:?}"
            )));
        }
        AggSet::bind(&aggs, &base.schema)?;
        let data = ctx.table(&format!("{index_name}_data"))?;
        // Resume the generation counter past any existing append files so
        // future appends never collide with persisted slice files.
        let max_gen = ctx
            .hdfs
            .list_files(&data.location)
            .iter()
            .filter_map(|(p, _)| {
                p.rsplit('/')
                    .next()?
                    .strip_prefix("part-r-")?
                    .split('-')
                    .next()?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .unwrap_or(0);
        let placement = kv
            .get(META_PLACEMENT_KEY)?
            .map(|b| SlicePlacement::decode(&b))
            .unwrap_or(SlicePlacement::KeyHash);
        Ok(DgfIndex {
            ctx,
            base,
            data,
            policy,
            aggs,
            kv,
            placement,
            generation: AtomicU64::new(max_gen),
            header_cache: GfuHeaderCache::new(DEFAULT_HEADER_CACHE_CAPACITY),
        })
    }

    /// Index new records: they are appended to the base table as a fresh
    /// file and reorganized into new Slices; existing GFU entries extend
    /// rather than rebuild (the paper's time-extension load path).
    pub fn append(&self, rows: &[Row]) -> Result<BuildReport> {
        let gen = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let path = self
            .ctx
            .append_file(&self.base, &format!("delta-{gen:05}"), rows)?;
        let watch = Stopwatch::start();
        let len = self.ctx.hdfs.file_len(&path)?;
        let splits = dgf_storage::splits_for_file(&path, len, self.ctx.hdfs.block_size());
        let reorganized = self.reorganize(splits, self.base.format);
        // Retire the header-cache epoch only after the new GFU values are
        // in the store (or the write failed partway through): a plan racing
        // this append may have cached pre-append values under `gen`, and
        // this bump orphans them. Generation numbers only need to be
        // monotonic, not consecutive.
        self.generation.fetch_add(1, Ordering::Relaxed);
        reorganized?;
        Ok(BuildReport {
            build_time: watch.elapsed(),
            index_size_bytes: self.kv.logical_size_bytes(),
            index_entries: self.kv.len() as u64 - META_KEY_COUNT,
        })
    }

    /// The current append generation. Every [`append`](Self::append) bumps
    /// it; the planner tags header-cache epochs with it.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The in-memory cache of decoded GFU values used by the prefix-scan
    /// planner (see [`crate::cache`]).
    pub fn header_cache(&self) -> &GfuHeaderCache {
        &self.header_cache
    }

    /// The shared reorganization job (Algorithms 1 + 2).
    fn reorganize(&self, splits: Vec<FileSplit>, format: FileFormat) -> Result<JobReport> {
        if splits.is_empty() {
            // Nothing to index; still persist metadata so queries work.
            self.persist_meta(&Extents::empty(self.policy.arity()))?;
            return Ok(JobReport::default());
        }
        let gen = self.generation.load(Ordering::Relaxed);
        let dim_idx: Vec<usize> = self
            .policy
            .dims()
            .iter()
            .map(|d| self.base.schema.index_of(&d.name))
            .collect::<Result<_>>()?;
        let agg_set = AggSet::bind(&self.aggs, &self.base.schema)?;
        let num_reducers = self.ctx.engine.threads().min(splits.len()).max(1);
        let ctx = &self.ctx;
        let base = &self.base;
        let policy = &self.policy;
        let data_loc = self.data.location.clone();
        let kv = &self.kv;
        let arity = self.policy.arity();

        // Slice placement: which encoded-key prefix defines the reducer.
        let prefix_len = match self.placement {
            SlicePlacement::KeyHash => None,
            SlicePlacement::PrefixLocality { prefix_dims } => {
                Some(GFU_PREFIX.len() + 8 * prefix_dims)
            }
        };
        let partitioner = prefix_len.map(|cut| {
            move |key: &Vec<u8>, n: usize| {
                (dgf_common::codec::fnv1a(&key[..cut.min(key.len())]) % n as u64) as usize
            }
        });

        // Map (Algorithm 1): standardize dims → GFUKey; emit (key, line).
        let job = self.ctx.engine.map_reduce_partitioned(
            splits,
            num_reducers,
            partitioner
                .as_ref()
                .map(|p| p as &(dyn Fn(&Vec<u8>, usize) -> usize + Sync)),
            &|_, split: FileSplit, e| {
                let mut emit_row = |row: Row| -> Result<()> {
                    let mut cells = Vec::with_capacity(dim_idx.len());
                    for (i, d) in dim_idx.iter().zip(policy.dims()) {
                        cells.push(d.cell_of(&row[*i])?);
                    }
                    e.emit(GfuKey::new(cells).encode(), format_row(&row));
                    Ok(())
                };
                match format {
                    FileFormat::Text => {
                        let mut r = TextReader::open(&ctx.hdfs, base.schema.clone(), &split)?;
                        while let Some((_, row)) = r.next_with_offset()? {
                            emit_row(row)?;
                        }
                    }
                    FileFormat::RcFile => {
                        let mut r = RcReader::open(&ctx.hdfs, base.schema.clone(), &split)?;
                        while let Some((_, row)) = r.next_with_offset()? {
                            emit_row(row)?;
                        }
                    }
                }
                Ok(())
            },
            None,
            // Reduce (Algorithm 2): write each GFU's records as one Slice,
            // fold the header, put (key, value) into the store.
            &|tid, groups: Vec<(Vec<u8>, Vec<String>)>| {
                let path = format!("{data_loc}/part-r-{gen:05}-{tid:05}");
                let mut w = SliceWriter::create(&ctx.hdfs, &path, base, format)?;
                let mut extents = Extents::empty(arity);
                for (key_bytes, lines) in groups {
                    let key = GfuKey::decode(&key_bytes, arity)?;
                    extents.observe(&key);
                    let start = w.offset();
                    let mut states = agg_set.new_states();
                    for line in &lines {
                        let row = parse_row(line, &base.schema)?;
                        agg_set.update(&mut states, &row, &base.schema)?;
                        w.write(line, row)?;
                    }
                    let end = w.end_slice()?;
                    let slice = crate::gfu::SliceLoc::new(path.clone(), start, end);
                    let header = AggSet::encode_states(&states);
                    let count = lines.len() as u64;
                    let mut merge_err = None;
                    kv.update(&key_bytes, &mut |old| {
                        match merge_gfu(old, &header, &slice, count, &agg_set) {
                            Ok(v) => v.encode(),
                            Err(e) => {
                                merge_err = Some(e);
                                old.map(|o| o.to_vec()).unwrap_or_default()
                            }
                        }
                    })?;
                    if let Some(e) = merge_err {
                        return Err(e);
                    }
                }
                w.close()?;
                Ok(extents)
            },
        )?;

        // Merge the reducers' extents into the persisted metadata.
        let mut extents = Extents::empty(arity);
        for e in &job.outputs {
            extents.merge(e);
        }
        self.persist_meta(&extents)?;
        Ok(job.report)
    }

    fn persist_meta(&self, new_extents: &Extents) -> Result<()> {
        self.kv.put(META_POLICY_KEY, &self.policy.encode())?;
        self.kv.put(META_PLACEMENT_KEY, &self.placement.encode())?;
        let files = self.ctx.hdfs.list_files(&self.base.location).len() as u64;
        self.kv.put(META_FILES_KEY, &files.to_le_bytes())?;
        let agg_keys: Vec<u8> = self
            .aggs
            .iter()
            .map(|a| a.key())
            .collect::<Vec<_>>()
            .join("\n")
            .into_bytes();
        self.kv.put(META_AGGS_KEY, &agg_keys)?;
        let arity = self.policy.arity();
        let enc = new_extents.encode();
        self.kv.update(META_EXTENT_KEY, &mut |old| match old {
            Some(bytes) => {
                let mut merged = Extents::decode(bytes)
                    .unwrap_or_else(|_| Extents::empty(arity));
                merged.merge(new_extents);
                merged.encode()
            }
            None => enc.clone(),
        })?;
        self.kv.flush()?;
        Ok(())
    }

    /// Staleness check: error if the base table holds files that were
    /// never indexed (e.g. loaded directly instead of via
    /// [`append`](Self::append)). A stale index would silently drop those
    /// records from every answer.
    pub fn check_freshness(&self) -> Result<()> {
        let Some(bytes) = self.kv.get(META_FILES_KEY)? else {
            return Ok(()); // pre-freshness index: assume in sync
        };
        let mut b = [0u8; 8];
        b[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        let indexed = u64::from_le_bytes(b);
        let current = self.ctx.hdfs.list_files(&self.base.location).len() as u64;
        if current > indexed {
            return Err(DgfError::Index(format!(
                "index is stale: base table {:?} has {current} files but only \
                 {indexed} are indexed — load new data through DgfIndex::append",
                self.base.name
            )));
        }
        Ok(())
    }

    /// The persisted per-dimension extents.
    pub fn extents(&self) -> Result<Extents> {
        match self.kv.get(META_EXTENT_KEY)? {
            Some(bytes) => Extents::decode(&bytes),
            None => Ok(Extents::empty(self.policy.arity())),
        }
    }

    /// Canonical keys of the pre-computed aggregates.
    pub fn agg_keys(&self) -> Vec<String> {
        self.aggs.iter().map(|a| a.key()).collect()
    }

    /// Number of GFU entries currently stored.
    pub fn gfu_count(&self) -> usize {
        self.kv.len().saturating_sub(META_KEY_COUNT as usize)
    }
}

/// Format-dispatched writer of slice-aligned reorganized data.
enum SliceWriter {
    Text(TextWriter),
    Rc(dgf_format::RcWriter),
}

impl SliceWriter {
    fn create(
        hdfs: &dgf_storage::HdfsRef,
        path: &str,
        base: &TableRef,
        format: FileFormat,
    ) -> Result<SliceWriter> {
        Ok(match format {
            FileFormat::Text => SliceWriter::Text(TextWriter::create(hdfs, path)?),
            FileFormat::RcFile => SliceWriter::Rc(dgf_format::RcWriter::create(
                hdfs,
                path,
                base.schema.clone(),
                base.rows_per_group,
            )?),
        })
    }

    /// Offset where the next slice will begin.
    fn offset(&self) -> u64 {
        match self {
            SliceWriter::Text(w) => w.offset(),
            SliceWriter::Rc(w) => w.group_offset(),
        }
    }

    /// Append one record (`line` is its text form, `row` its parsed form).
    fn write(&mut self, line: &str, row: Row) -> Result<()> {
        match self {
            SliceWriter::Text(w) => {
                w.write_line(line)?;
            }
            SliceWriter::Rc(w) => {
                w.write_row(&row)?;
            }
        }
        Ok(())
    }

    /// Close the current slice at a record/group boundary; returns its
    /// exclusive end offset.
    fn end_slice(&mut self) -> Result<u64> {
        match self {
            SliceWriter::Text(w) => Ok(w.offset()),
            SliceWriter::Rc(w) => {
                w.finish_group()?;
                Ok(w.group_offset())
            }
        }
    }

    fn close(self) -> Result<u64> {
        match self {
            SliceWriter::Text(w) => w.close(),
            SliceWriter::Rc(w) => w.close(),
        }
    }
}

/// Merge a freshly built slice into an existing GFU value (or create one).
fn merge_gfu(
    old: Option<&[u8]>,
    header: &[u8],
    slice: &crate::gfu::SliceLoc,
    count: u64,
    agg_set: &AggSet,
) -> Result<GfuValue> {
    match old {
        None => Ok(GfuValue {
            header: header.to_vec(),
            slices: vec![slice.clone()],
            record_count: count,
        }),
        Some(bytes) => {
            let mut v = GfuValue::decode(bytes)?;
            if !agg_set.is_empty() {
                let mut states = agg_set.decode_states(&v.header)?;
                let new_states = agg_set.decode_states(header)?;
                agg_set.merge(&mut states, &new_states)?;
                v.header = AggSet::encode_states(&states);
            }
            v.slices.push(slice.clone());
            v.record_count += count;
            Ok(v)
        }
    }
}

/// Convenience: the canonical meter-data pre-compute list from the paper's
/// real-world experiments (`sum(powerConsumed)` plus count).
pub fn default_precompute(power_col: &str) -> Vec<AggFunc> {
    vec![AggFunc::Sum(power_col.to_owned()), AggFunc::Count]
}

/// Scan all GFU entries (diagnostics, tests, size accounting).
pub fn all_gfus(kv: &dyn KvStore, arity: usize) -> Result<Vec<(GfuKey, GfuValue)>> {
    let pairs = kv.scan_prefix(crate::gfu::GFU_PREFIX)?;
    let mut out = Vec::with_capacity(pairs.len());
    for (k, v) in pairs {
        out.push((GfuKey::decode(&k, arity)?, GfuValue::decode(&v)?));
    }
    Ok(out)
}

/// Helper used by tests and benches: the example grid of the paper's
/// Figure 5 (dimension A: min 1 interval 3; dimension B: min 11
/// interval 2).
pub fn paper_figure5_policy() -> SplittingPolicy {
    SplittingPolicy::new(vec![
        crate::policy::DimPolicy::int("A", 1, 3),
        crate::policy::DimPolicy::int("B", 11, 2),
    ])
    .expect("static policy")
}

/// The paper's Figure 5 example rows `(A, B, C)`.
pub fn paper_figure5_rows() -> Vec<Row> {
    [
        (1, 14, 0.1),
        (5, 18, 0.5),
        (7, 12, 1.2),
        (2, 11, 0.5),
        (9, 14, 0.8),
        (11, 16, 1.3),
        (3, 18, 0.9),
        (12, 12, 0.3),
        (8, 13, 0.2),
    ]
    .into_iter()
    .map(|(a, b, c)| vec![Value::Int(a), Value::Int(b), Value::Float(c)])
    .collect()
}
