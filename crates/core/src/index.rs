//! DGFIndex construction (paper §4.2, Algorithms 1 and 2) and incremental
//! extension.
//!
//! Construction is a MapReduce job that **reorganizes** the base table:
//! mappers standardize each record's indexed dimensions into a GFUKey and
//! emit `(GFUKey, line)`; each reducer writes the records of every key it
//! owns contiguously as a *Slice* of its output file, folds the
//! pre-computed aggregates into the GFU header, and puts the
//! `GFUKey → GFUValue` pair into the key-value store. Because the shuffle
//! groups and sorts by key, a Slice always holds exactly the records of
//! one GFU.
//!
//! The time dimension makes the index append-only: new meter data lands in
//! new time cells, so `append` runs the same job over only the new file
//! and merges the resulting GFU entries into the store — no rebuild, and
//! write throughput is unaffected (paper §1 contribution iii).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgf_common::fault::{FaultPlan, RetryPolicy};
use dgf_common::obs::{names, MetricsRegistry, Profiler};
use dgf_common::{format_row, parse_row, DgfError, Result, Row, Stopwatch, Value};
use dgf_format::{
    is_sidecar_path, sidecar_path, FileFormat, RcReader, SidecarBuilder, TextReader, TextWriter,
};
use dgf_hive::{BuildReport, HiveContext, TableRef};
use dgf_kvstore::KvStore;
use dgf_mapreduce::JobReport;
use dgf_query::{AggFunc, AggSet, AggState};
use dgf_storage::{FileSplit, HdfsRef};

use parking_lot::{Mutex, RwLock};

use crate::cache::{GfuHeaderCache, DEFAULT_HEADER_CACHE_CAPACITY};
use crate::fresh::FreshSource;
use crate::gfu::{
    Extents, GfuKey, GfuValue, GFU_PREFIX, META_AGGS_KEY, META_EXTENT_KEY, META_FILES_KEY,
    META_GC_KEY, META_INGEST_KEY, META_PLACEMENT_KEY, META_POLICY_KEY, META_PYRAMID_KEY,
    META_VIEW_KEY,
};
use crate::maintain::CellHeat;
use crate::policy::SplittingPolicy;
use crate::pyramid;
use crate::txn::{
    live_key, stage_key, stage_prefix, TxnManifest, TxnState, STAGE_PREFIX, TXN_MANIFEST_KEY,
};
use crate::view::ReadView;

/// How GFU Slices are placed across reducer output files — the paper's §8
/// "optimal placement of Slices" future work.
///
/// The shuffle sorts each reducer's keys, so slices of *consecutive* keys
/// in the same reducer are physically adjacent. Placement chooses which
/// keys share a reducer:
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicePlacement {
    /// Hash of the full GFUKey (the Hadoop default). Neighboring cells
    /// scatter across files; range queries touch many slices in many
    /// places.
    KeyHash,
    /// Hash of only the first `prefix_dims` coordinates: every cell
    /// sharing that prefix lands in one reducer, where the sort makes
    /// their slices contiguous. For a `(user, region, time)` grid with
    /// `prefix_dims = 2`, the whole time series of a user-cell × region is
    /// one contiguous byte run — a time-range query coalesces to a single
    /// sequential read per touched prefix.
    PrefixLocality {
        /// How many leading dimensions define the locality group.
        prefix_dims: usize,
    },
}

impl SlicePlacement {
    fn encode(&self) -> Vec<u8> {
        match self {
            SlicePlacement::KeyHash => vec![0, 0, 0, 0],
            SlicePlacement::PrefixLocality { prefix_dims } => {
                (*prefix_dims as u32).to_le_bytes().to_vec()
            }
        }
    }

    fn decode(bytes: &[u8]) -> SlicePlacement {
        let mut b = [0u8; 4];
        b[..bytes.len().min(4)].copy_from_slice(&bytes[..bytes.len().min(4)]);
        match u32::from_le_bytes(b) {
            0 => SlicePlacement::KeyHash,
            n => SlicePlacement::PrefixLocality {
                prefix_dims: n as usize,
            },
        }
    }
}

/// Construction/open options beyond the required arguments: slice
/// placement, the retry policy wrapped around every key-value and
/// storage round trip, and an optional fault plan whose crash points the
/// commit protocol consults (tests enumerate them to sweep every crash
/// site).
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// Slice placement policy used by construction and appends.
    pub placement: SlicePlacement,
    /// Retry policy for transient key-value faults.
    pub retry: RetryPolicy,
    /// Fault schedule consulted at the commit protocol's crash points.
    pub fault: Option<Arc<FaultPlan>>,
    /// Span collector threaded through builds, opens, and query planning.
    /// The default honours the `DGF_TRACE` environment variable and is a
    /// no-op when it is unset; pass [`Profiler::enabled`] to collect a
    /// [`QueryProfile`](dgf_common::obs::QueryProfile) unconditionally.
    pub profiler: Profiler,
    /// Worker threads the prefix-scan planner may use to fetch key runs
    /// concurrently (the serving tier's scatter). `1` — the default —
    /// keeps the historical strictly sequential fetch; any value is
    /// answer-preserving because runs are always *absorbed* in odometer
    /// order regardless of fetch completion order (DESIGN.md §13).
    pub fetch_parallelism: usize,
    /// Whether *new builds* maintain the hierarchical aggregate pyramid
    /// (see [`crate::pyramid`]). Ignored on [`open`](DgfIndex::open):
    /// an existing store's `m:pyramid` metadata decides, because a
    /// pyramid-bearing store must keep its nodes maintained on every
    /// append regardless of who opens it (a stale node would silently
    /// under-count), and a legacy store can never grow one in place
    /// (its absent ancestors would read as empty).
    pub pyramid: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            placement: SlicePlacement::KeyHash,
            retry: RetryPolicy::standard(),
            fault: None,
            profiler: Profiler::from_env(),
            fetch_parallelism: 1,
            pyramid: true,
        }
    }
}

/// Run `f` with the policy's retry loop, counting absorbed faults into
/// the store's own `retries_absorbed` stat.
fn kv_retry<T>(retry: RetryPolicy, kv: &dyn KvStore, f: impl FnMut() -> Result<T>) -> Result<T> {
    retry.run(&kv.stats().retries_absorbed, f)
}

/// A built DGFIndex: the reorganized data table plus the GFU store.
///
/// Per the paper, each table can have only one DGFIndex, because the index
/// *is* a physical reorganization of the table.
pub struct DgfIndex {
    /// The warehouse context.
    pub ctx: Arc<HiveContext>,
    /// The original table (source of schema and of ground-truth scans).
    pub base: TableRef,
    /// The reorganized, slice-aligned data table (TextFile — the only
    /// format DGFIndex supports in the paper).
    pub data: TableRef,
    /// The grid policy. Behind a lock because online grid adaptation
    /// ([`crate::maintain`]) swaps it after a committed regrid; readers
    /// use the policy riding their pinned [`ReadView`] instead, so this
    /// is only the fallback for legacy views and the seed for writes.
    policy: RwLock<Arc<SplittingPolicy>>,
    /// Pre-computed aggregate list (may be empty).
    pub aggs: Vec<AggFunc>,
    /// The GFU key-value store (HBase in the paper).
    pub kv: Arc<dyn KvStore>,
    /// Slice placement policy used by construction and appends.
    pub placement: SlicePlacement,
    /// Retry policy wrapped around every key-value round trip.
    pub retry: RetryPolicy,
    fault: Option<Arc<FaultPlan>>,
    profiler: Profiler,
    generation: AtomicU64,
    header_cache: GfuHeaderCache,
    fresh_source: Mutex<Option<Arc<dyn FreshSource>>>,
    fetch_parallelism: usize,
    /// Pyramid height when this store maintains one (`m:pyramid`);
    /// `None` disables both maintenance and the `Pyramid` plan strategy.
    pyramid: Option<u8>,
    /// Planner-fed per-dimension boundary-heat counters consumed by the
    /// maintenance daemon's grid adaptation (see [`crate::maintain`]).
    heat: CellHeat,
}

impl DgfIndex {
    /// Build a DGFIndex over `base` (paper Listing 3: `CREATE INDEX …
    /// IDXPROPERTIES(policy, precompute)`).
    pub fn build(
        ctx: Arc<HiveContext>,
        base: TableRef,
        policy: SplittingPolicy,
        aggs: Vec<AggFunc>,
        kv: Arc<dyn KvStore>,
        index_name: &str,
    ) -> Result<(DgfIndex, BuildReport)> {
        Self::build_with_placement(
            ctx,
            base,
            policy,
            aggs,
            kv,
            index_name,
            SlicePlacement::KeyHash,
        )
    }

    /// [`build`](Self::build) with an explicit Slice-placement policy.
    pub fn build_with_placement(
        ctx: Arc<HiveContext>,
        base: TableRef,
        policy: SplittingPolicy,
        aggs: Vec<AggFunc>,
        kv: Arc<dyn KvStore>,
        index_name: &str,
        placement: SlicePlacement,
    ) -> Result<(DgfIndex, BuildReport)> {
        Self::build_with_options(
            ctx,
            base,
            policy,
            aggs,
            kv,
            index_name,
            IndexOptions {
                placement,
                ..IndexOptions::default()
            },
        )
    }

    /// [`build`](Self::build) with full [`IndexOptions`].
    pub fn build_with_options(
        ctx: Arc<HiveContext>,
        base: TableRef,
        policy: SplittingPolicy,
        aggs: Vec<AggFunc>,
        kv: Arc<dyn KvStore>,
        index_name: &str,
        options: IndexOptions,
    ) -> Result<(DgfIndex, BuildReport)> {
        let placement = options.placement;
        // Validate dimensions against the schema.
        for d in policy.dims() {
            let t = base.schema.type_of(&d.name)?;
            if t != d.vtype {
                return Err(DgfError::Index(format!(
                    "dimension {:?} is {t} in the table but {} in the policy",
                    d.name, d.vtype
                )));
            }
        }
        // Validate aggregates bind (and are additive by construction).
        AggSet::bind(&aggs, &base.schema)?;

        // The reorganized data keeps the base table's format — the paper
        // implements TextFile and notes other formats are a straightforward
        // extension; RCFile slices are aligned to whole row groups.
        // Inherit the base table's row-group size: slices (and their
        // sidecars) written on build, append, flush, and compaction keep
        // the pruning granularity the base table was tuned for.
        let data = ctx.create_table_grouped(
            &format!("{index_name}_data"),
            base.schema.clone(),
            base.format,
            &format!("/warehouse/{index_name}/data"),
            base.rows_per_group,
        )?;
        if let SlicePlacement::PrefixLocality { prefix_dims } = placement {
            if prefix_dims == 0 || prefix_dims >= policy.arity() {
                return Err(DgfError::Index(format!(
                    "prefix_dims must be in 1..{} for this grid",
                    policy.arity()
                )));
            }
        }
        // The pyramid only pays off when headers exist to summarize, and
        // very wide grids would fan out 2^d children per node.
        let pyramid = (options.pyramid
            && !aggs.is_empty()
            && policy.arity() <= pyramid::MAX_PYRAMID_ARITY)
            .then_some(pyramid::DEFAULT_PYRAMID_LEVELS);
        let heat = CellHeat::new(policy.arity());
        let index = DgfIndex {
            ctx,
            base,
            data,
            policy: RwLock::new(Arc::new(policy)),
            aggs,
            kv,
            placement,
            retry: options.retry,
            fault: options.fault,
            profiler: options.profiler,
            generation: AtomicU64::new(0),
            header_cache: GfuHeaderCache::new(DEFAULT_HEADER_CACHE_CAPACITY),
            fresh_source: Mutex::new(None),
            fetch_parallelism: options.fetch_parallelism.max(1),
            pyramid,
            heat,
        };
        let watch = Stopwatch::start();
        let span = index.profiler.span("build");
        let kv_before = index.kv.stats().snapshot();
        let splits = index.ctx.table_splits(&index.base);
        // Declare the transaction before its first write so a crash at
        // any later point is recoverable.
        let manifest = TxnManifest::intent(0, index.staging_dir(0), None);
        index.kv_put(TXN_MANIFEST_KEY, &manifest.encode())?;
        index.crash_point("build.intent")?;
        let job = {
            let reorg = span.child("build.reorganize");
            let job = index.reorganize(splits, index.base.format, None, None)?;
            job.attach_to_span(&reorg);
            job
        };
        let report = BuildReport {
            build_time: watch.elapsed(),
            index_size_bytes: index.kv.logical_size_bytes(),
            // Count data keys by prefix: subtracting a fixed meta-key
            // count from `len()` miscounts whenever the meta-key set
            // grows (and underflows on a sparse store).
            index_entries: index.gfu_count()? as u64,
        };
        index.kv.stats().snapshot().since(&kv_before).attach_to_span(&span);
        span.finish();
        let _ = job;
        Ok((index, report))
    }

    /// Reattach to an index persisted in `kv` (e.g. a
    /// [`LogKvStore`](dgf_kvstore::LogKvStore) after a restart): the
    /// splitting policy and extents load from the store's metadata; the
    /// reorganized data table must still be registered under
    /// `<index_name>_data`. `aggs` must match the pre-computed list the
    /// index was built with (UDFs cannot be reconstructed from their
    /// names alone, so the caller supplies them; the stored keys are
    /// verified).
    pub fn open(
        ctx: Arc<HiveContext>,
        base: TableRef,
        kv: Arc<dyn KvStore>,
        index_name: &str,
        aggs: Vec<AggFunc>,
    ) -> Result<DgfIndex> {
        Self::open_with_options(ctx, base, kv, index_name, aggs, IndexOptions::default())
    }

    /// [`open`](Self::open) with full [`IndexOptions`]. Runs crash
    /// recovery first: an interrupted transaction found in the store is
    /// rolled back (pre-commit) or re-applied (post-commit) before any
    /// metadata is read.
    pub fn open_with_options(
        ctx: Arc<HiveContext>,
        base: TableRef,
        kv: Arc<dyn KvStore>,
        index_name: &str,
        aggs: Vec<AggFunc>,
        options: IndexOptions,
    ) -> Result<DgfIndex> {
        let span = options.profiler.span("open");
        let kv_before = kv.stats().snapshot();
        {
            let recover_span = span.child("open.recover");
            Self::recover(&ctx.hdfs, &kv, options.retry)?;
            kv.stats().snapshot().since(&kv_before).attach_to_span(&recover_span);
        }
        let meta_span = span.child("open.meta");
        let meta_before = kv.stats().snapshot();
        let policy_bytes = kv_retry(options.retry, kv.as_ref(), || kv.get(META_POLICY_KEY))?
            .ok_or_else(|| DgfError::Index("store holds no DGFIndex metadata".into()))?;
        let policy = SplittingPolicy::decode(&policy_bytes)?;
        let stored_keys = kv_retry(options.retry, kv.as_ref(), || kv.get(META_AGGS_KEY))?
            .map(|b| String::from_utf8_lossy(&b).into_owned())
            .unwrap_or_default();
        let supplied_keys = aggs
            .iter()
            .map(|a| a.key())
            .collect::<Vec<_>>()
            .join("\n");
        if stored_keys != supplied_keys {
            return Err(DgfError::Index(format!(
                "pre-computed aggregates mismatch: stored {stored_keys:?}, supplied {supplied_keys:?}"
            )));
        }
        AggSet::bind(&aggs, &base.schema)?;
        let data = ctx.table(&format!("{index_name}_data"))?;
        // Resume the generation counter past any existing append files so
        // future appends never collide with persisted slice files.
        let max_gen = ctx
            .hdfs
            .list_files(&data.location)
            .iter()
            .filter_map(|(p, _)| {
                p.rsplit('/')
                    .next()?
                    .strip_prefix("part-r-")?
                    .split('-')
                    .next()?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .unwrap_or(0);
        let placement = kv_retry(options.retry, kv.as_ref(), || kv.get(META_PLACEMENT_KEY))?
            .map(|b| SlicePlacement::decode(&b))
            .unwrap_or(SlicePlacement::KeyHash);
        // The stored metadata decides, not `options.pyramid`: see
        // [`IndexOptions::pyramid`].
        let stored_pyramid = kv_retry(options.retry, kv.as_ref(), || kv.get(META_PYRAMID_KEY))?
            .as_deref()
            .map(pyramid::decode_meta)
            .transpose()?;
        kv.stats().snapshot().since(&meta_before).attach_to_span(&meta_span);
        meta_span.finish();
        span.finish();
        let heat = CellHeat::new(policy.arity());
        Ok(DgfIndex {
            ctx,
            base,
            data,
            policy: RwLock::new(Arc::new(policy)),
            aggs,
            kv,
            placement,
            retry: options.retry,
            fault: options.fault,
            profiler: options.profiler,
            generation: AtomicU64::new(max_gen),
            header_cache: GfuHeaderCache::new(DEFAULT_HEADER_CACHE_CAPACITY),
            fresh_source: Mutex::new(None),
            fetch_parallelism: options.fetch_parallelism.max(1),
            pyramid: stored_pyramid,
            heat,
        })
    }

    /// Repair an interrupted transaction, if the store holds one. Called
    /// by [`open`](Self::open); also usable directly after a simulated
    /// crash. Returns the state the transaction was found in, or `None`
    /// when the store was clean.
    ///
    /// * [`TxnState::Intent`] / [`TxnState::Prepared`] — the commit
    ///   point never passed: staged keys, the staging directory, and any
    ///   unacknowledged base-table delta file are deleted, restoring the
    ///   previous epoch exactly.
    /// * [`TxnState::Committed`] — the commit point passed: the apply
    ///   recipe recorded in the manifest is (re-)executed; every step is
    ///   idempotent, so partial prior applies are harmless.
    ///
    /// The manifest itself is deleted last in both directions, so a
    /// crash *during recovery* is recovered by the next recovery.
    pub fn recover(
        hdfs: &HdfsRef,
        kv: &Arc<dyn KvStore>,
        retry: RetryPolicy,
    ) -> Result<Option<TxnState>> {
        Self::recover_with_fault(hdfs, kv, retry, None)
    }

    /// [`recover`](Self::recover) that threads a fault plan into the
    /// re-apply path, so its crash and scheduling points fire during
    /// recovery too. The interleaving harness uses this to drive query
    /// threads through a recovery in progress.
    pub fn recover_with_fault(
        hdfs: &HdfsRef,
        kv: &Arc<dyn KvStore>,
        retry: RetryPolicy,
        fault: Option<&Arc<FaultPlan>>,
    ) -> Result<Option<TxnState>> {
        let Some(bytes) = kv_retry(retry, kv.as_ref(), || kv.get(TXN_MANIFEST_KEY))? else {
            // No manifest: any staged key is an orphan from a cleanup
            // that lost the race with a crash after the manifest delete —
            // unreachable by design, but garbage-collecting is cheap.
            let orphans = kv_retry(retry, kv.as_ref(), || kv.scan_prefix(STAGE_PREFIX))?;
            for (k, _) in orphans {
                kv_retry(retry, kv.as_ref(), || kv.delete(&k))?;
            }
            return Ok(None);
        };
        let manifest = TxnManifest::decode(&bytes)?;
        match manifest.state {
            TxnState::Committed => {
                Self::apply_committed(hdfs, kv.as_ref(), retry, &manifest, fault)?;
                Self::cleanup_txn(hdfs, kv.as_ref(), retry, &manifest)?;
            }
            TxnState::Intent | TxnState::Prepared => {
                Self::rollback_txn(hdfs, kv.as_ref(), retry, &manifest)?;
            }
        }
        Ok(Some(manifest.state))
    }

    /// Phase B of the commit protocol: make the committed transaction
    /// live. Every step is idempotent — renames skip when the
    /// destination exists, staged-key publishes skip keys already
    /// garbage-collected, metadata puts are plain overwrites of
    /// precomputed values.
    ///
    /// Ordering is load-bearing for live readers (DESIGN.md §11): the
    /// new pending [`ReadView`] is put *after* the renames (so its split
    /// list resolves) and *before* the first live GFU overwrite. A
    /// reader pinned to the old view that races the publishes will see
    /// the new view at validation time and retry; a reader pinned to the
    /// pending view reconstructs the complete new state by overlaying
    /// this transaction's staged keys.
    pub(crate) fn apply_committed(
        hdfs: &HdfsRef,
        kv: &dyn KvStore,
        retry: RetryPolicy,
        manifest: &TxnManifest,
        fault: Option<&Arc<FaultPlan>>,
    ) -> Result<()> {
        for (from, to) in &manifest.renames {
            if hdfs.file_exists(to) {
                continue;
            }
            if hdfs.file_exists(from) {
                kv_retry(retry, kv, || hdfs.rename_file(from, to))?;
            }
        }
        if let Some(plan) = fault {
            plan.crash_point("apply.renamed")?;
        }
        if !manifest.view.is_empty() {
            kv_retry(retry, kv, || kv.put(META_VIEW_KEY, &manifest.view))?;
        }
        if let Some(plan) = fault {
            plan.crash_point("apply.view")?;
        }
        for staged in &manifest.staged_keys {
            if let Some(plan) = fault {
                plan.sync_point("apply.publish-cell");
            }
            if let Some(v) = kv_retry(retry, kv, || kv.get(staged))? {
                kv_retry(retry, kv, || kv.put(live_key(staged), &v))?;
            }
        }
        if let Some(plan) = fault {
            plan.crash_point("apply.published")?;
        }
        for (k, v) in &manifest.meta_puts {
            kv_retry(retry, kv, || kv.put(k, v))?;
        }
        // Retire keys the transaction re-gridded away. Runs after the
        // staged publishes: a pending-view reader masks these keys with
        // the staged tombstone twins until they are gone, so at no point
        // can it see both grid epochs. Deleting an already-deleted key
        // is a no-op, keeping re-apply idempotent.
        for k in &manifest.deletes {
            kv_retry(retry, kv, || kv.delete(k).map(|_| ()))?;
        }
        if let Some(plan) = fault {
            if !manifest.deletes.is_empty() {
                plan.crash_point("apply.retired")?;
            }
        }
        Ok(())
    }

    /// Remove a finished (applied) transaction's staging state. The view
    /// is re-put with `pending` cleared only after the staged keys are
    /// gone (readers read staged-then-live, so a deleted staged key
    /// always falls back to the already-published live value); the
    /// manifest goes last: if a crash interrupts cleanup, recovery
    /// re-applies and re-cleans.
    pub(crate) fn cleanup_txn(
        hdfs: &HdfsRef,
        kv: &dyn KvStore,
        retry: RetryPolicy,
        manifest: &TxnManifest,
    ) -> Result<()> {
        for staged in &manifest.staged_keys {
            kv_retry(retry, kv, || kv.delete(staged))?;
        }
        if !manifest.view.is_empty() {
            let mut view = ReadView::decode(&manifest.view)?;
            view.pending = false;
            let enc = view.encode();
            kv_retry(retry, kv, || kv.put(META_VIEW_KEY, &enc))?;
        }
        hdfs.delete_tree(&manifest.staging_dir)?;
        kv_retry(retry, kv, || kv.delete(TXN_MANIFEST_KEY))?;
        kv_retry(retry, kv, || kv.flush())?;
        Ok(())
    }

    /// Undo a transaction that never reached its commit point. The
    /// staged-key sweep uses the prefix (not the manifest's list) because
    /// an Intent-state manifest predates the list.
    pub(crate) fn rollback_txn(
        hdfs: &HdfsRef,
        kv: &dyn KvStore,
        retry: RetryPolicy,
        manifest: &TxnManifest,
    ) -> Result<()> {
        let staged = kv_retry(retry, kv, || kv.scan_prefix(STAGE_PREFIX))?;
        for (k, _) in staged {
            kv_retry(retry, kv, || kv.delete(&k))?;
        }
        hdfs.delete_tree(&manifest.staging_dir)?;
        if let Some(delta) = &manifest.base_delta {
            if hdfs.file_exists(delta) {
                hdfs.delete_file(delta)?;
            }
        }
        kv_retry(retry, kv, || kv.delete(TXN_MANIFEST_KEY))?;
        kv_retry(retry, kv, || kv.flush())?;
        Ok(())
    }

    /// Index new records: they are appended to the base table as a fresh
    /// file and reorganized into new Slices; existing GFU entries extend
    /// rather than rebuild (the paper's time-extension load path).
    pub fn append(&self, rows: &[Row]) -> Result<BuildReport> {
        self.append_with_watermark(rows, None)
    }

    /// [`append`](Self::append) that additionally advances the persisted
    /// ingest watermark to `watermark` *atomically with the commit*: the
    /// watermark put rides the transaction manifest's precomputed meta
    /// puts, so after a crash either both the new Slices and the
    /// watermark are live or neither is. The streaming flusher uses this
    /// so WAL replay can tell flushed batches from unflushed ones.
    pub fn append_with_watermark(
        &self,
        rows: &[Row],
        watermark: Option<u64>,
    ) -> Result<BuildReport> {
        let span = self.profiler.span("append");
        let kv_before = self.kv.stats().snapshot();
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        // Declare the transaction — including the delta file about to be
        // written — BEFORE writing it: a crash between the base-table
        // write and the commit point must roll the unacknowledged delta
        // back, or the index would be permanently stale.
        let delta_name = format!("delta-{gen:05}");
        let delta_path = format!("{}/{delta_name}", self.base.location);
        let manifest = TxnManifest::intent(gen, self.staging_dir(gen), Some(delta_path));
        self.kv_put(TXN_MANIFEST_KEY, &manifest.encode())?;
        let attempt = (|| -> Result<BuildReport> {
            self.crash_point("append.intent")?;
            self.sync_point("append.intent");
            let path = self.ctx.append_file(&self.base, &delta_name, rows)?;
            self.crash_point("append.delta-written")?;
            self.sync_point("append.delta-written");
            let watch = Stopwatch::start();
            let len = self.ctx.hdfs.file_len(&path)?;
            let splits = dgf_storage::splits_for_file(&path, len, self.ctx.hdfs.block_size());
            let reorg_span = span.child("append.reorganize");
            let reorganized = self.reorganize(splits, self.base.format, watermark, None);
            // Retire the header-cache epoch only after the new GFU values
            // are in the store (or the write failed partway through): a
            // plan racing this append may have cached pre-append values
            // under `gen`, and this bump orphans them. Generation numbers
            // only need to be monotonic, not consecutive.
            self.generation.fetch_add(1, Ordering::AcqRel);
            if let Ok(job) = &reorganized {
                job.attach_to_span(&reorg_span);
            }
            reorg_span.finish();
            reorganized?;
            Ok(BuildReport {
                build_time: watch.elapsed(),
                index_size_bytes: self.kv.logical_size_bytes(),
                index_entries: self.gfu_count()? as u64,
            })
        })();
        self.kv.stats().snapshot().since(&kv_before).attach_to_span(&span);
        match attempt {
            Ok(report) => Ok(report),
            Err(e) => {
                // Repair in-process instead of leaving the Intent
                // manifest and orphaned delta for the next open: a
                // long-lived process would otherwise leak one delta per
                // failed append, and a concurrent opener could roll back
                // a transaction this index still thinks it owns.
                self.abort_append();
                Err(e)
            }
        }
    }

    /// Best-effort repair after a failed append, mirroring what
    /// [`recover`](Self::recover) would do at the next open: roll an
    /// uncommitted transaction back, roll a committed one forward. All
    /// repair errors are swallowed — if the store itself is down (e.g. a
    /// sticky injected crash) the manifest survives and open-time
    /// recovery remains the backstop, exactly as before.
    fn abort_append(&self) {
        // Raw read, no retry: when the store is unreachable, bail fast.
        let Ok(Some(bytes)) = self.kv.get(TXN_MANIFEST_KEY) else {
            return;
        };
        let Ok(manifest) = TxnManifest::decode(&bytes) else {
            return;
        };
        let _ = match manifest.state {
            TxnState::Intent | TxnState::Prepared => {
                Self::rollback_txn(&self.ctx.hdfs, self.kv.as_ref(), self.retry, &manifest)
            }
            TxnState::Committed => {
                Self::apply_committed(&self.ctx.hdfs, self.kv.as_ref(), self.retry, &manifest, None)
                    .and_then(|()| {
                        Self::cleanup_txn(&self.ctx.hdfs, self.kv.as_ref(), self.retry, &manifest)
                    })
            }
        };
    }

    /// The current append generation. Every [`append`](Self::append) bumps
    /// it; committed [`ReadView`]s carry the generation their transaction
    /// ran at. Acquire pairs with the Release bumps around commit, so a
    /// thread that observes a bumped generation also observes the KV
    /// state the bumping transaction published.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The current grid policy. A cheap clone of a shared handle; hold
    /// it for the duration of one operation rather than re-reading, and
    /// prefer the policy riding a pinned [`ReadView`] for anything that
    /// must agree with that view's cell geometry (a committed regrid
    /// swaps this handle).
    pub fn policy(&self) -> Arc<SplittingPolicy> {
        self.policy.read().clone()
    }

    /// Swap the in-memory policy handle after a committed regrid.
    pub(crate) fn install_policy(&self, policy: Arc<SplittingPolicy>) {
        *self.policy.write() = policy;
    }

    /// Planner-fed boundary-heat counters (see [`crate::maintain`]).
    pub fn heat(&self) -> &CellHeat {
        &self.heat
    }

    /// Allocate the next transaction generation (pre-commit).
    pub(crate) fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Retire the header-cache epoch after a committed (or failed)
    /// maintenance transaction, mirroring the bump in
    /// [`append_with_watermark`](Self::append_with_watermark).
    pub(crate) fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// The persisted deferred file-reclamation list (`m:gc`): data files
    /// retired by a maintenance transaction, awaiting one full round of
    /// grace before deletion. See [`crate::maintain`].
    pub fn gc_list(&self) -> Result<Vec<String>> {
        let Some(bytes) = self.kv_get(META_GC_KEY)? else {
            return Ok(Vec::new());
        };
        decode_gc_list(&bytes)
    }

    /// Persist the deferred-reclamation list (plain put: the maintenance
    /// daemon is the only writer and resolves the final value itself).
    pub(crate) fn put_gc_list(&self, paths: &[String]) -> Result<()> {
        self.kv_put(META_GC_KEY, &encode_gc_list(paths))
    }

    /// Staging directory of transaction `txn` — a *sibling* of the data
    /// directory, so half-written Slice files never appear in the data
    /// table's split enumeration.
    pub(crate) fn staging_dir(&self, txn: u64) -> String {
        format!("{}_staging/txn-{txn:05}", self.data.location)
    }

    /// Consult the fault plan's crash point `site` (no-op without a plan).
    pub(crate) fn crash_point(&self, site: &str) -> Result<()> {
        match &self.fault {
            Some(plan) => plan.crash_point(site),
            None => Ok(()),
        }
    }

    /// Consult the fault plan's scheduling point `site` (no-op without a
    /// plan): interleaving tests use these to widen race windows.
    pub(crate) fn sync_point(&self, site: &str) {
        if let Some(plan) = &self.fault {
            plan.sync_point(site);
        }
    }

    pub(crate) fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        kv_retry(self.retry, self.kv.as_ref(), || self.kv.get(key))
    }

    pub(crate) fn kv_scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        kv_retry(self.retry, self.kv.as_ref(), || self.kv.scan_range(start, end))
    }

    pub(crate) fn kv_scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        kv_retry(self.retry, self.kv.as_ref(), || self.kv.scan_prefix(prefix))
    }

    /// The fault plan threaded through the commit protocol, if any.
    pub(crate) fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    pub(crate) fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        kv_retry(self.retry, self.kv.as_ref(), || self.kv.put(key, value))
    }

    pub(crate) fn kv_delete(&self, key: &[u8]) -> Result<bool> {
        kv_retry(self.retry, self.kv.as_ref(), || self.kv.delete(key))
    }

    /// The in-memory cache of decoded GFU values used by the prefix-scan
    /// planner (see [`crate::cache`]).
    pub fn header_cache(&self) -> &GfuHeaderCache {
        &self.header_cache
    }

    /// The span collector this index was opened or built with (see
    /// [`IndexOptions::profiler`]). Engines fork it per query so each
    /// run's profile is independent.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Worker threads the prefix-scan planner uses to fetch key runs
    /// (see [`IndexOptions::fetch_parallelism`]); `1` means sequential.
    pub fn fetch_parallelism(&self) -> usize {
        self.fetch_parallelism
    }

    /// Height of the maintained aggregate pyramid, or `None` when this
    /// store carries no pyramid (legacy stores, empty pre-compute
    /// lists, very wide grids). See [`crate::pyramid`].
    pub fn pyramid_levels(&self) -> Option<u8> {
        self.pyramid
    }

    /// Replace the index's span collector after the fact — e.g. to force
    /// collection for one profiled run regardless of `DGF_TRACE`, as the
    /// bench harness does when emitting `BENCH_*.json`.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Project this index's lifetime counters — key-value store traffic,
    /// header-cache hits and misses, storage-layer I/O — into one
    /// [`MetricsRegistry`] under the stable hierarchical names, so totals
    /// from the different stats blocks reconcile in a single dump.
    pub fn metrics(&self) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        self.kv.stats().snapshot().record_into(&reg);
        let cache = self.header_cache.stats();
        reg.add(names::CACHE_HEADER_HITS, cache.hits);
        reg.add(names::CACHE_HEADER_MISSES, cache.misses);
        self.ctx
            .hdfs
            .record_io_into(&reg, &dgf_common::stats::IoSnapshot::default());
        reg
    }

    /// The shared reorganization job (Algorithms 1 + 2), run as a
    /// crash-atomic transaction (see [`crate::txn`]): reducers write
    /// Slices into a staging directory and merged GFU values under
    /// staged keys; one manifest put commits the new epoch, after which
    /// the idempotent apply phase publishes everything. The caller must
    /// already have written an Intent-state manifest. `ingest_watermark`,
    /// when set, becomes the persisted ingest watermark at commit.
    ///
    /// With a [`RegridSpec`], the job is a **full rewrite** instead of
    /// an extension: the splits cover the index's own live data files,
    /// every record is re-celled under the spec's *new* policy, staged
    /// values replace (never merge with) live ones, extents are rebuilt
    /// from scratch, identity-valued tombstones are staged over every
    /// old-granularity key so pending-view readers never see two grid
    /// epochs, and the manifest's `deletes` retire those keys at apply.
    pub(crate) fn reorganize(
        &self,
        splits: Vec<FileSplit>,
        format: FileFormat,
        ingest_watermark: Option<u64>,
        regrid: Option<&RegridSpec>,
    ) -> Result<JobReport> {
        let gen = self.generation.load(Ordering::Acquire);
        let policy = match regrid {
            Some(spec) => Arc::clone(&spec.policy),
            None => self.policy(),
        };
        if splits.is_empty() {
            // Nothing to index; still persist metadata so queries work,
            // then retire the (empty) transaction.
            self.persist_meta(&Extents::empty(policy.arity()), ingest_watermark)?;
            self.kv_delete(TXN_MANIFEST_KEY)?;
            return Ok(JobReport::default());
        }
        let dim_idx: Vec<usize> = policy
            .dims()
            .iter()
            .map(|d| self.base.schema.index_of(&d.name))
            .collect::<Result<_>>()?;
        let agg_set = AggSet::bind(&self.aggs, &self.base.schema)?;
        let num_reducers = self.ctx.engine.threads().min(splits.len()).max(1);
        let ctx = &self.ctx;
        let base = &self.base;
        let policy = policy.as_ref();
        let data_loc = self.data.location.clone();
        let staging_dir = self.staging_dir(gen);
        let kv = &self.kv;
        let retry = self.retry;
        let arity = policy.arity();
        let fault = self.fault.clone();
        let rewrite = regrid.is_some();

        // Slice placement: which encoded-key prefix defines the reducer.
        let prefix_len = match self.placement {
            SlicePlacement::KeyHash => None,
            SlicePlacement::PrefixLocality { prefix_dims } => {
                Some(GFU_PREFIX.len() + 8 * prefix_dims)
            }
        };
        let partitioner = prefix_len.map(|cut| {
            move |key: &Vec<u8>, n: usize| {
                (dgf_common::codec::fnv1a(&key[..cut.min(key.len())]) % n as u64) as usize
            }
        });

        // Map (Algorithm 1): standardize dims → GFUKey; emit (key, line).
        let job = self.ctx.engine.map_reduce_partitioned(
            splits,
            num_reducers,
            partitioner
                .as_ref()
                .map(|p| p as &(dyn Fn(&Vec<u8>, usize) -> usize + Sync)),
            &|_, split: FileSplit, e| {
                let mut emit_row = |row: Row| -> Result<()> {
                    let mut cells = Vec::with_capacity(dim_idx.len());
                    for (i, d) in dim_idx.iter().zip(policy.dims()) {
                        cells.push(d.cell_of(&row[*i])?);
                    }
                    e.emit(GfuKey::new(cells).encode(), format_row(&row));
                    Ok(())
                };
                match format {
                    FileFormat::Text => {
                        let mut r = TextReader::open(&ctx.hdfs, base.schema.clone(), &split)?;
                        while let Some((_, row)) = r.next_with_offset()? {
                            emit_row(row)?;
                        }
                    }
                    FileFormat::RcFile => {
                        let mut r = RcReader::open(&ctx.hdfs, base.schema.clone(), &split)?;
                        while let Some((_, row)) = r.next_with_offset()? {
                            emit_row(row)?;
                        }
                    }
                }
                Ok(())
            },
            None,
            // Reduce (Algorithm 2): write each GFU's records as one Slice
            // of a STAGED file, fold the header, and stage the merged
            // (key, value) pair. Nothing live changes until commit.
            &|tid, groups: Vec<(Vec<u8>, Vec<String>)>| {
                let path = format!("{staging_dir}/part-r-{gen:05}-{tid:05}");
                // Slice locations record the post-commit path: files are
                // renamed into the data directory at apply, keys publish
                // unmodified.
                let final_path = format!("{data_loc}/part-r-{gen:05}-{tid:05}");
                let mut w = SliceWriter::create(&ctx.hdfs, &path, base, format)?;
                let mut extents = Extents::empty(arity);
                let mut staged_keys: Vec<Vec<u8>> = Vec::new();
                for (key_bytes, lines) in groups {
                    let key = GfuKey::decode(&key_bytes, arity)?;
                    extents.observe(&key);
                    let start = w.offset();
                    let mut states = agg_set.new_states();
                    for line in &lines {
                        let row = parse_row(line, &base.schema)?;
                        agg_set.update(&mut states, &row, &base.schema)?;
                        w.write(line, row)?;
                    }
                    let end = w.end_slice()?;
                    let slice = crate::gfu::SliceLoc::new(final_path.clone(), start, end);
                    let header = AggSet::encode_states(&states);
                    let count = lines.len() as u64;
                    // The staged value is the FINAL post-commit value:
                    // the live value (untouched until commit) merged with
                    // this slice. The shuffle gives each key to exactly
                    // one reducer exactly once per job, so publishing it
                    // later is an idempotent put.
                    if let Some(plan) = &fault {
                        plan.sync_point("reorg.stage-cell");
                    }
                    // A regrid rewrite replaces the keyspace wholesale:
                    // new cell coordinates may collide with a live
                    // old-granularity key, and merging with it would
                    // double-count every record it ever held.
                    let old = if rewrite {
                        None
                    } else {
                        kv_retry(retry, kv.as_ref(), || kv.get(&key_bytes))?
                    };
                    let merged = merge_gfu(old.as_deref(), &header, &slice, count, &agg_set)?;
                    let skey = stage_key(gen, &key_bytes);
                    let enc = merged.encode();
                    kv_retry(retry, kv.as_ref(), || kv.put(&skey, &enc))?;
                    staged_keys.push(skey);
                }
                w.close()?;
                Ok((extents, staged_keys))
            },
        )?;

        // Prepare: complete the manifest with the full apply recipe —
        // renames, staged keys, and precomputed (merge-free) metadata.
        // A rewrite's extents are rebuilt from its own outputs alone: the
        // stored extents describe the old granularity.
        let mut extents = if rewrite {
            Extents::empty(arity)
        } else {
            match self.kv_get(META_EXTENT_KEY)? {
                Some(bytes) => Extents::decode(&bytes)?,
                None => Extents::empty(arity),
            }
        };
        let mut staged_keys: Vec<Vec<u8>> = Vec::new();
        for (e, keys) in &job.outputs {
            extents.merge(e);
            staged_keys.extend(keys.iter().cloned());
        }
        // Stage the pyramid delta in the SAME transaction: recompute
        // every node whose subtree holds a cell this job touched, from
        // the final post-commit child values. The staged nodes publish
        // through the same apply phase as the cells — visibility flips
        // with the one `m:view` put, so readers never see cells and
        // ancestors from different epochs.
        if let Some(levels) = self.pyramid {
            self.stage_pyramid_updates(gen, levels, &mut staged_keys, rewrite)?;
        }
        // A rewrite retires every old-granularity key its job did not
        // re-stage: an identity-valued tombstone is staged over each one
        // (so a pending-view reader's staged-over-live overlay masks the
        // old grid completely — new cell coordinates share the old key
        // space, so un-masked old keys would land inside the new view's
        // scan runs), and the manifest's `deletes` removes them at apply.
        let mut deletes: Vec<Vec<u8>> = Vec::new();
        if rewrite {
            use std::collections::HashSet;
            let staged_live: HashSet<Vec<u8>> = staged_keys
                .iter()
                .map(|s| live_key(s).to_vec())
                .collect();
            let tombstone = GfuValue {
                header: AggSet::encode_states(&agg_set.new_states()),
                slices: Vec::new(),
                record_count: 0,
            }
            .encode();
            let mut old_keys: Vec<Vec<u8>> = kv_retry(retry, kv.as_ref(), || {
                kv.scan_prefix(GFU_PREFIX)
            })?
            .into_iter()
            .map(|(k, _)| k)
            .collect();
            old_keys.extend(
                kv_retry(retry, kv.as_ref(), || {
                    kv.scan_prefix(pyramid::PYRAMID_PREFIX)
                })?
                .into_iter()
                .map(|(k, _)| k),
            );
            for k in old_keys {
                if staged_live.contains(&k) {
                    continue;
                }
                let skey = stage_key(gen, &k);
                kv_retry(retry, kv.as_ref(), || kv.put(&skey, &tombstone))?;
                staged_keys.push(skey);
                deletes.push(k);
            }
        }
        // The post-commit split list: every data file already live plus
        // this transaction's rename destinations (sized from the staged
        // files — slice files are immutable once renamed, so the pinned
        // lengths stay exact). Recorded in the view so a pinned reader
        // never mixes one epoch's headers with another's split list.
        // A rewrite's view lists only its own outputs: the old files are
        // retired wholesale. Either way, files already awaiting deferred
        // reclamation (`m:gc`) must never re-enter a view.
        let staged_files = self.ctx.hdfs.list_files(&staging_dir);
        let mut renames: Vec<(String, String)> = Vec::with_capacity(staged_files.len());
        // Sidecars ride the renames with their slice files but are never
        // data: keep them out of the split list (here and from prior gens).
        let gc: std::collections::HashSet<String> = self.gc_list()?.into_iter().collect();
        let mut data_files: Vec<(String, u64)> = if rewrite {
            Vec::new()
        } else {
            self.ctx
                .hdfs
                .list_files(&self.data.location)
                .into_iter()
                .filter(|(p, _)| !is_sidecar_path(p) && !gc.contains(p))
                .collect()
        };
        for (p, len) in staged_files {
            let name = p.rsplit('/').next().unwrap_or(&p).to_owned();
            let dest = format!("{data_loc}/{name}");
            if !is_sidecar_path(&dest) {
                data_files.push((dest.clone(), len));
            }
            renames.push((p, dest));
        }
        data_files.sort();
        data_files.dedup();
        self.crash_point("reorg.staged")?;
        let mut manifest = match self.kv_get(TXN_MANIFEST_KEY)? {
            Some(b) => TxnManifest::decode(&b)?,
            None => TxnManifest::intent(gen, staging_dir.clone(), None),
        };
        let files = self.ctx.hdfs.list_files(&self.base.location).len() as u64;
        let watermark = self.ingest_watermark()?.max(ingest_watermark.unwrap_or(0));
        manifest.state = TxnState::Prepared;
        manifest.renames = renames;
        manifest.staged_keys = staged_keys;
        manifest.deletes = deletes;
        manifest.meta_puts = self.meta_puts(policy, &extents, files, watermark);
        if let Some(spec) = regrid {
            // The replaced files join the deferred-reclamation list (one
            // maintenance round of grace for readers pinned to the old
            // view) rather than being deleted at apply.
            let mut retired: Vec<String> = gc.iter().cloned().collect();
            retired.extend(spec.retire.iter().map(|(p, _)| p.clone()));
            retired.sort();
            retired.dedup();
            manifest
                .meta_puts
                .push((META_GC_KEY.to_vec(), encode_gc_list(&retired)));
        }
        manifest.view = ReadView {
            generation: gen,
            pending: true,
            watermark,
            files: Some(files),
            extents: extents.clone(),
            data_files: Some(data_files),
            policy: Some(policy.encode()),
            versioned: true,
        }
        .encode();
        self.kv_put(TXN_MANIFEST_KEY, &manifest.encode())?;
        self.crash_point("reorg.prepared")?;

        // COMMIT POINT: this single put flips the epoch. Before it,
        // recovery rolls everything back; after it, recovery re-applies.
        manifest.state = TxnState::Committed;
        self.kv_put(TXN_MANIFEST_KEY, &manifest.encode())?;
        self.crash_point("reorg.committed")?;

        Self::apply_committed(
            &self.ctx.hdfs,
            self.kv.as_ref(),
            self.retry,
            &manifest,
            self.fault.as_ref(),
        )?;
        self.crash_point("reorg.applied")?;
        Self::cleanup_txn(&self.ctx.hdfs, self.kv.as_ref(), self.retry, &manifest)?;
        Ok(job.report)
    }

    /// Recompute and stage the pyramid nodes dirtied by transaction
    /// `gen`'s staged cells. Every dirty level-`k` parent is folded
    /// from its 2^d children in canonical odometer order
    /// ([`pyramid::fold_node`]): touched children come from this
    /// transaction's staged values (their *final* post-commit state),
    /// untouched siblings from the live store. The nodes are staged
    /// under the same `s:` prefix and appended to `staged_keys`, so
    /// the generic apply/rollback/recovery machinery publishes or
    /// discards them with the cells — no pyramid-specific crash
    /// handling exists or is needed.
    /// `rewrite` (regrid) folds strictly from this transaction's staged
    /// cells: the live store holds old-granularity values whose
    /// coordinates may collide with new ones, so falling back to it
    /// would fold stale children into the new pyramid.
    pub(crate) fn stage_pyramid_updates(
        &self,
        gen: u64,
        levels: u8,
        staged_keys: &mut Vec<Vec<u8>>,
        rewrite: bool,
    ) -> Result<()> {
        use std::collections::HashMap;
        let agg_set = AggSet::bind(&self.aggs, &self.base.schema)?;
        let arity = self.policy().arity();
        // Final post-commit values of everything staged so far — all
        // the `g:` cells this job wrote.
        let staged = kv_retry(self.retry, self.kv.as_ref(), || {
            self.kv.scan_prefix(&stage_prefix(gen))
        })?;
        let mut current: HashMap<Vec<u8>, GfuValue> = HashMap::new();
        let mut dirty: Vec<Vec<i64>> = Vec::new();
        for (skey, v) in &staged {
            let live = live_key(skey);
            if !live.starts_with(GFU_PREFIX) {
                continue;
            }
            let key = GfuKey::decode(live, arity)?;
            dirty.push(key.cells);
            current.insert(live.to_vec(), GfuValue::decode(v)?);
        }
        for level in 1..=levels {
            // Parent coords are not monotone in child order: sort+dedup.
            let mut parents: Vec<Vec<i64>> =
                dirty.iter().map(|c| pyramid::parent_coords(c)).collect();
            parents.sort();
            parents.dedup();
            // One scheduling point per LEVEL, not per parent: the
            // interleaving harness can still pause mid-pyramid-staging,
            // but the flush's in-progress window stays short enough for
            // the planner's bounded validation retries (readers spin
            // while a flush is mid-epoch, so every pause here extends
            // their worst case directly).
            self.sync_point("reorg.stage-pyramid");
            for parent in &parents {
                let child_value = |coords: &[i64]| -> Result<Option<(Vec<AggState>, u64)>> {
                    let ckey = pyramid::level_key(level - 1, coords);
                    let value = match current.get(&ckey) {
                        Some(v) => Some(v.clone()),
                        None if rewrite => None,
                        None => self
                            .kv_get(&ckey)?
                            .as_deref()
                            .map(GfuValue::decode)
                            .transpose()?,
                    };
                    match value {
                        None => Ok(None),
                        Some(v) => Ok(Some((agg_set.decode_states(&v.header)?, v.record_count))),
                    }
                };
                let folded = pyramid::fold_node(
                    &agg_set,
                    pyramid::child_coords(parent).iter().map(|c| child_value(c)),
                )?;
                // A dirty parent always has at least one present child
                // (the staged cell that dirtied it), but stay defensive.
                let Some((states, count)) = folded else { continue };
                let node = GfuValue {
                    header: AggSet::encode_states(&states),
                    slices: Vec::new(),
                    record_count: count,
                };
                let nkey = pyramid::pyramid_key(level, parent);
                let skey = stage_key(gen, &nkey);
                let enc = node.encode();
                kv_retry(self.retry, self.kv.as_ref(), || self.kv.put(&skey, &enc))?;
                staged_keys.push(skey);
                current.insert(nkey, node);
            }
            dirty = parents;
        }
        self.crash_point("reorg.pyramid-staged")?;
        Ok(())
    }

    /// The precomputed post-commit metadata puts. Plain overwrites (the
    /// extents are merged at prepare time, not at apply time, and the
    /// caller resolves the ingest watermark to its final monotone value)
    /// so re-applying after a crash never double-merges. The watermark
    /// never regresses: a flush carries the sequence of its own batches,
    /// a plain build/append re-persists the stored one.
    pub(crate) fn meta_puts(
        &self,
        policy: &SplittingPolicy,
        extents: &Extents,
        files: u64,
        watermark: u64,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let agg_keys: Vec<u8> = self
            .aggs
            .iter()
            .map(|a| a.key())
            .collect::<Vec<_>>()
            .join("\n")
            .into_bytes();
        let mut puts = vec![
            (META_POLICY_KEY.to_vec(), policy.encode()),
            (META_PLACEMENT_KEY.to_vec(), self.placement.encode()),
            (META_FILES_KEY.to_vec(), files.to_le_bytes().to_vec()),
            (META_AGGS_KEY.to_vec(), agg_keys),
            (META_EXTENT_KEY.to_vec(), extents.encode()),
            (META_INGEST_KEY.to_vec(), watermark.to_le_bytes().to_vec()),
        ];
        if let Some(levels) = self.pyramid {
            puts.push((META_PYRAMID_KEY.to_vec(), pyramid::encode_meta(levels)));
        }
        puts
    }

    /// The non-transactional metadata path, used only when a build or
    /// append indexed no records (empty split set): nothing data-visible
    /// changes, so plain puts suffice. A fresh non-pending view goes last
    /// so even this path bumps the pinned-reader generation.
    fn persist_meta(&self, new_extents: &Extents, ingest_watermark: Option<u64>) -> Result<()> {
        let policy = self.policy();
        let mut extents = match self.kv_get(META_EXTENT_KEY)? {
            Some(bytes) => {
                Extents::decode(&bytes).unwrap_or_else(|_| Extents::empty(policy.arity()))
            }
            None => Extents::empty(policy.arity()),
        };
        extents.merge(new_extents);
        let files = self.ctx.hdfs.list_files(&self.base.location).len() as u64;
        let watermark = self.ingest_watermark()?.max(ingest_watermark.unwrap_or(0));
        for (k, v) in self.meta_puts(&policy, &extents, files, watermark) {
            self.kv_put(&k, &v)?;
        }
        let gc: std::collections::HashSet<String> = self.gc_list()?.into_iter().collect();
        let mut data_files: Vec<(String, u64)> = self
            .ctx
            .hdfs
            .list_files(&self.data.location)
            .into_iter()
            .filter(|(p, _)| !is_sidecar_path(p) && !gc.contains(p))
            .collect();
        data_files.sort();
        data_files.dedup();
        let view = ReadView {
            generation: self.generation.load(Ordering::Acquire),
            pending: false,
            watermark,
            files: Some(files),
            extents,
            data_files: Some(data_files),
            policy: Some(policy.encode()),
            versioned: true,
        };
        self.kv_put(META_VIEW_KEY, &view.encode())?;
        kv_retry(self.retry, self.kv.as_ref(), || self.kv.flush())?;
        Ok(())
    }

    /// The persisted ingest watermark: the highest streaming batch
    /// sequence whose rows are committed into Slices (0 before any
    /// streaming flush). See [`append_with_watermark`](Self::append_with_watermark).
    pub fn ingest_watermark(&self) -> Result<u64> {
        let Some(bytes) = self.kv_get(META_INGEST_KEY)? else {
            return Ok(0);
        };
        let mut b = [0u8; 8];
        b[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        Ok(u64::from_le_bytes(b))
    }

    /// Register a [`FreshSource`] (the streaming memtable): from now on
    /// plans merge its buffered rows with the persisted index, so queries
    /// observe every acknowledged write without waiting for a flush.
    pub fn set_fresh_source(&self, source: Arc<dyn FreshSource>) {
        *self.fresh_source.lock() = Some(source);
    }

    /// Detach the registered [`FreshSource`], if any.
    pub fn clear_fresh_source(&self) {
        *self.fresh_source.lock() = None;
    }

    /// The registered [`FreshSource`], if any.
    pub fn fresh_source(&self) -> Option<Arc<dyn FreshSource>> {
        self.fresh_source.lock().clone()
    }

    /// Pin the committed [`ReadView`] with a single KV read — the one
    /// atomic snapshot query planning works from. Stores that predate
    /// views (no `m:view` key) get a view synthesized from one batched
    /// `multi_get` of the legacy meta keys, marked non-`versioned` so
    /// validation falls back to the in-memory generation counter.
    pub fn pin_view(&self) -> Result<ReadView> {
        if let Some(bytes) = self.kv_get(META_VIEW_KEY)? {
            return ReadView::decode(&bytes);
        }
        let metas = kv_retry(self.retry, self.kv.as_ref(), || {
            self.kv.multi_get(&[
                META_FILES_KEY.to_vec(),
                META_EXTENT_KEY.to_vec(),
                META_INGEST_KEY.to_vec(),
            ])
        })?;
        let files = metas[0].as_deref().map(le_u64);
        let extents = match metas[1].as_deref() {
            Some(b) => Extents::decode(b)?,
            None => Extents::empty(self.policy().arity()),
        };
        let watermark = metas[2].as_deref().map(le_u64).unwrap_or(0);
        Ok(ReadView {
            generation: self.generation(),
            pending: false,
            watermark,
            files,
            extents,
            data_files: None,
            policy: None,
            versioned: false,
        })
    }

    /// Whether `view` is still the committed view. The `pending` flag may
    /// legitimately flip (cleanup clears it without changing state a
    /// reader can observe inconsistently), so only the generation counts.
    pub fn view_unchanged(&self, view: &ReadView) -> Result<bool> {
        if view.versioned {
            match self.kv_get(META_VIEW_KEY)? {
                Some(bytes) => Ok(ReadView::decode(&bytes)?.generation == view.generation),
                None => Ok(false),
            }
        } else {
            Ok(self.generation() == view.generation)
        }
    }

    /// A point `get` as seen from `view`: while the view's transaction is
    /// still publishing, its staged twin is consulted *first* (a staged
    /// miss means the key is either unchanged or already published, so
    /// the live read that follows is the new state either way).
    pub(crate) fn kv_get_pinned(&self, view: &ReadView, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if view.versioned && view.pending {
            if let Some(v) = self.kv_get(&stage_key(view.generation, key))? {
                return Ok(Some(v));
            }
        }
        self.kv_get(key)
    }

    /// A batched `multi_get` as seen from `view`: while the view's
    /// transaction is still publishing, one batch over the staged twins
    /// runs *first* and a second batch over the live keys fills the
    /// staged misses — the same per-key staged-before-live ordering
    /// argument as [`kv_get_pinned`](Self::kv_get_pinned), paid as two
    /// snapshot-atomic round trips instead of one per key.
    pub(crate) fn kv_multi_get_pinned(
        &self,
        view: &ReadView,
        keys: &[Vec<u8>],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        if !(view.versioned && view.pending) {
            return kv_retry(self.retry, self.kv.as_ref(), || self.kv.multi_get(keys));
        }
        let staged_keys: Vec<Vec<u8>> = keys
            .iter()
            .map(|k| stage_key(view.generation, k))
            .collect();
        let mut out = kv_retry(self.retry, self.kv.as_ref(), || {
            self.kv.multi_get(&staged_keys)
        })?;
        let miss_idx: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.is_none().then_some(i))
            .collect();
        if !miss_idx.is_empty() {
            let miss_keys: Vec<Vec<u8>> = miss_idx.iter().map(|i| keys[*i].clone()).collect();
            let live = kv_retry(self.retry, self.kv.as_ref(), || {
                self.kv.multi_get(&miss_keys)
            })?;
            for (i, v) in miss_idx.into_iter().zip(live) {
                out[i] = v;
            }
        }
        Ok(out)
    }

    /// A range scan as seen from `view`: staged keys are scanned before
    /// the live range (same ordering argument as
    /// [`kv_get_pinned`](Self::kv_get_pinned)) and overlaid with staged
    /// precedence. The stage prefix preserves live-key order, so the
    /// overlay is a sorted two-list merge.
    pub(crate) fn kv_scan_range_pinned(
        &self,
        view: &ReadView,
        start: &[u8],
        end: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if !(view.versioned && view.pending) {
            return self.kv_scan_range(start, end);
        }
        let sp = stage_prefix(view.generation);
        let sstart = [sp.as_slice(), start].concat();
        let send = [sp.as_slice(), end].concat();
        let staged = self.kv_scan_range(&sstart, &send)?;
        let live = self.kv_scan_range(start, end)?;
        if staged.is_empty() {
            return Ok(live);
        }
        let mut out = Vec::with_capacity(live.len() + staged.len());
        let mut staged = staged
            .into_iter()
            .map(|(k, v)| (live_key(&k).to_vec(), v))
            .peekable();
        for (k, v) in live {
            while staged.peek().is_some_and(|(sk, _)| *sk < k) {
                out.push(staged.next().expect("peeked"));
            }
            if staged.peek().is_some_and(|(sk, _)| *sk == k) {
                out.push(staged.next().expect("peeked"));
            } else {
                out.push((k, v));
            }
        }
        out.extend(staged);
        Ok(out)
    }

    /// [`check_freshness`](Self::check_freshness) against a pinned view.
    /// Extra base-table files are tolerated when an in-flight transaction
    /// accounts for them (its delta is not acknowledged yet, so the
    /// pinned pre-commit answer is correct) or when the live file count
    /// already moved past the view (a commit landed; validation will see
    /// the new view and retry). Anything else is genuine staleness.
    pub(crate) fn check_freshness_pinned(&self, view: &ReadView) -> Result<()> {
        let Some(indexed) = view.files else {
            return Ok(()); // pre-freshness index: assume in sync
        };
        let current = self.ctx.hdfs.list_files(&self.base.location).len() as u64;
        if current <= indexed {
            return Ok(());
        }
        if let Ok(Some(bytes)) = self.kv.get(TXN_MANIFEST_KEY) {
            if let Ok(manifest) = TxnManifest::decode(&bytes) {
                let base_loc = format!("{}/", self.base.location);
                if manifest
                    .base_delta
                    .as_deref()
                    .is_some_and(|d| d.starts_with(&base_loc))
                {
                    return Ok(());
                }
            }
        }
        let live_files = self.kv_get(META_FILES_KEY)?.as_deref().map(le_u64);
        if live_files != Some(indexed) {
            return Ok(());
        }
        Err(DgfError::Index(format!(
            "index is stale: base table {:?} has {current} files but only \
             {indexed} are indexed — load new data through DgfIndex::append",
            self.base.name
        )))
    }

    /// Staleness check: error if the base table holds files that were
    /// never indexed (e.g. loaded directly instead of via
    /// [`append`](Self::append)). A stale index would silently drop those
    /// records from every answer.
    pub fn check_freshness(&self) -> Result<()> {
        let Some(bytes) = self.kv_get(META_FILES_KEY)? else {
            return Ok(()); // pre-freshness index: assume in sync
        };
        let mut b = [0u8; 8];
        b[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        let indexed = u64::from_le_bytes(b);
        let current = self.ctx.hdfs.list_files(&self.base.location).len() as u64;
        if current > indexed {
            return Err(DgfError::Index(format!(
                "index is stale: base table {:?} has {current} files but only \
                 {indexed} are indexed — load new data through DgfIndex::append",
                self.base.name
            )));
        }
        Ok(())
    }

    /// The persisted per-dimension extents.
    pub fn extents(&self) -> Result<Extents> {
        match self.kv_get(META_EXTENT_KEY)? {
            Some(bytes) => Extents::decode(&bytes),
            None => Ok(Extents::empty(self.policy().arity())),
        }
    }

    /// Canonical keys of the pre-computed aggregates.
    pub fn agg_keys(&self) -> Vec<String> {
        self.aggs.iter().map(|a| a.key()).collect()
    }

    /// Number of GFU entries currently stored, counted explicitly by
    /// prefix: deriving it from `len()` minus a fixed meta-key count
    /// breaks whenever the meta-key set changes, and underflows on a
    /// store that holds only some of the meta keys.
    pub fn gfu_count(&self) -> Result<usize> {
        let pairs = kv_retry(self.retry, self.kv.as_ref(), || {
            self.kv.scan_prefix(GFU_PREFIX)
        })?;
        Ok(pairs.len())
    }
}

/// Little-endian `u64` from a (possibly short) stored value.
fn le_u64(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
    u64::from_le_bytes(b)
}

/// Instructions turning [`DgfIndex::reorganize`] into a full grid
/// rewrite: re-cell every record under `policy` and, at apply, move the
/// `retire` files onto the deferred-reclamation list (`m:gc`).
pub(crate) struct RegridSpec {
    /// The adapted policy the rewrite cells records under.
    pub policy: Arc<SplittingPolicy>,
    /// Data files `(path, len)` superseded by the rewrite. They are not
    /// deleted at apply — a pinned reader may still hold the old view —
    /// but queued on `m:gc` for the next maintenance run.
    pub retire: Vec<(String, u64)>,
}

/// Encode the `m:gc` deferred-reclamation list (count + paths).
pub(crate) fn encode_gc_list(paths: &[String]) -> Vec<u8> {
    let mut buf = Vec::new();
    dgf_common::codec::put_u32(&mut buf, paths.len() as u32);
    for p in paths {
        dgf_common::codec::put_str(&mut buf, p);
    }
    buf
}

/// Decode the `m:gc` deferred-reclamation list.
pub(crate) fn decode_gc_list(bytes: &[u8]) -> Result<Vec<String>> {
    let mut d = dgf_common::codec::Decoder::new(bytes);
    let n = d.u32()? as usize;
    let mut paths = Vec::with_capacity(n);
    for _ in 0..n {
        paths.push(d.str()?.to_owned());
    }
    Ok(paths)
}

/// Format-dispatched writer of slice-aligned reorganized data.
///
/// The RCFile variant additionally streams every row through a
/// [`SidecarBuilder`] and, at close, writes the zone-map + hierarchical
/// bitmap sidecar beside the data file (`<path>.scx`, DESIGN.md §15).
/// Written into the staging directory, the sidecar rides the same
/// staged-commit renames as its slice file, so it is never visible
/// without the data it describes.
pub(crate) enum SliceWriter {
    Text(TextWriter),
    Rc {
        writer: Box<dgf_format::RcWriter>,
        hdfs: dgf_storage::HdfsRef,
        path: String,
        sidecar: SidecarBuilder,
    },
}

impl SliceWriter {
    pub(crate) fn create(
        hdfs: &dgf_storage::HdfsRef,
        path: &str,
        base: &TableRef,
        format: FileFormat,
    ) -> Result<SliceWriter> {
        Ok(match format {
            FileFormat::Text => SliceWriter::Text(TextWriter::create(hdfs, path)?),
            FileFormat::RcFile => SliceWriter::Rc {
                writer: Box::new(dgf_format::RcWriter::create(
                    hdfs,
                    path,
                    base.schema.clone(),
                    base.rows_per_group,
                )?),
                hdfs: hdfs.clone(),
                path: path.to_owned(),
                sidecar: SidecarBuilder::new(
                    base.schema.fields().iter().map(|f| f.name.clone()).collect(),
                ),
            },
        })
    }

    /// Offset where the next slice will begin.
    pub(crate) fn offset(&self) -> u64 {
        match self {
            SliceWriter::Text(w) => w.offset(),
            SliceWriter::Rc { writer, .. } => writer.group_offset(),
        }
    }

    /// Append one record (`line` is its text form, `row` its parsed form).
    pub(crate) fn write(&mut self, line: &str, row: Row) -> Result<()> {
        match self {
            SliceWriter::Text(w) => {
                w.write_line(line)?;
            }
            SliceWriter::Rc {
                writer, sidecar, ..
            } => {
                // `write_row` returns the row's group start; if the group
                // auto-flushed on this row, `group_offset()` has moved past
                // it and the group (start..end) is sealed for the sidecar.
                let start = writer.write_row(&row)?;
                sidecar.observe(&row);
                let after = writer.group_offset();
                if after != start {
                    sidecar.finish_group(start, after - start);
                }
            }
        }
        Ok(())
    }

    /// Close the current slice at a record/group boundary; returns its
    /// exclusive end offset.
    pub(crate) fn end_slice(&mut self) -> Result<u64> {
        match self {
            SliceWriter::Text(w) => Ok(w.offset()),
            SliceWriter::Rc {
                writer, sidecar, ..
            } => {
                let start = writer.group_offset();
                writer.finish_group()?;
                let end = writer.group_offset();
                if end != start {
                    sidecar.finish_group(start, end - start);
                }
                Ok(end)
            }
        }
    }

    pub(crate) fn close(self) -> Result<u64> {
        match self {
            SliceWriter::Text(w) => w.close(),
            SliceWriter::Rc {
                mut writer,
                hdfs,
                path,
                mut sidecar,
            } => {
                // Seal any group still open (the reducer normally ends every
                // slice first, making this a no-op) so the builder and the
                // file agree on group boundaries before the footer is written.
                let start = writer.group_offset();
                writer.finish_group()?;
                let end = writer.group_offset();
                if end != start {
                    sidecar.finish_group(start, end - start);
                }
                let data_len = writer.close()?;
                let bytes = sidecar.finish(data_len).encode();
                let mut w = hdfs.create(&sidecar_path(&path))?;
                use std::io::Write as _;
                w.write_all(&bytes)?;
                w.close()?;
                Ok(data_len)
            }
        }
    }
}

/// Merge a freshly built slice into an existing GFU value (or create one).
pub(crate) fn merge_gfu(
    old: Option<&[u8]>,
    header: &[u8],
    slice: &crate::gfu::SliceLoc,
    count: u64,
    agg_set: &AggSet,
) -> Result<GfuValue> {
    match old {
        None => Ok(GfuValue {
            header: header.to_vec(),
            slices: vec![slice.clone()],
            record_count: count,
        }),
        Some(bytes) => {
            let mut v = GfuValue::decode(bytes)?;
            if !agg_set.is_empty() {
                let mut states = agg_set.decode_states(&v.header)?;
                let new_states = agg_set.decode_states(header)?;
                agg_set.merge(&mut states, &new_states)?;
                v.header = AggSet::encode_states(&states);
            }
            v.slices.push(slice.clone());
            v.record_count += count;
            Ok(v)
        }
    }
}

/// Convenience: the canonical meter-data pre-compute list from the paper's
/// real-world experiments (`sum(powerConsumed)` plus count).
pub fn default_precompute(power_col: &str) -> Vec<AggFunc> {
    vec![AggFunc::Sum(power_col.to_owned()), AggFunc::Count]
}

/// Scan all GFU entries (diagnostics, tests, size accounting).
pub fn all_gfus(kv: &dyn KvStore, arity: usize) -> Result<Vec<(GfuKey, GfuValue)>> {
    let pairs = kv.scan_prefix(crate::gfu::GFU_PREFIX)?;
    let mut out = Vec::with_capacity(pairs.len());
    for (k, v) in pairs {
        out.push((GfuKey::decode(&k, arity)?, GfuValue::decode(&v)?));
    }
    Ok(out)
}

/// Helper used by tests and benches: the example grid of the paper's
/// Figure 5 (dimension A: min 1 interval 3; dimension B: min 11
/// interval 2).
pub fn paper_figure5_policy() -> SplittingPolicy {
    SplittingPolicy::new(vec![
        crate::policy::DimPolicy::int("A", 1, 3),
        crate::policy::DimPolicy::int("B", 11, 2),
    ])
    .expect("static policy")
}

/// The paper's Figure 5 example rows `(A, B, C)`.
pub fn paper_figure5_rows() -> Vec<Row> {
    [
        (1, 14, 0.1),
        (5, 18, 0.5),
        (7, 12, 1.2),
        (2, 11, 0.5),
        (9, 14, 0.8),
        (11, 16, 1.3),
        (3, 18, 0.9),
        (12, 12, 0.3),
        (8, 13, 0.2),
    ]
    .into_iter()
    .map(|(a, b, c)| vec![Value::Int(a), Value::Int(b), Value::Float(c)])
    .collect()
}
