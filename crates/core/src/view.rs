//! Versioned read views: the snapshot a query plans against.
//!
//! The paper's load path extends the grid in place (`append` updates
//! existing GFU entries rather than rebuilding, §5), so header mutation
//! and query reads race by design. A [`ReadView`] makes that race safe:
//! it is the committed snapshot of everything plan assembly needs —
//! generation, per-dimension extents, the exact split list, the ingest
//! watermark — resolved from a **single** KV `get` of
//! [`META_VIEW_KEY`](crate::gfu::META_VIEW_KEY). The commit protocol
//! publishes a new view as part of the staged transaction, and new GFU
//! values are staged under generation-qualified keys until the view that
//! references them is visible, so a reader pinned to one view can never
//! observe a blend of two index epochs (see `DESIGN.md` §11).

use dgf_common::codec::{self, Decoder};
use dgf_common::{DgfError, Result};

use crate::gfu::Extents;

/// The committed snapshot a plan pins at the start of assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadView {
    /// Index generation this view describes. Strictly monotonic across
    /// commits; header-cache entries are keyed by it.
    pub generation: u64,
    /// `true` while the committing transaction is still publishing:
    /// readers must overlay the transaction's staged keys over the live
    /// keyspace (staged-first, so a concurrent cleanup is harmless).
    pub pending: bool,
    /// Ingest watermark at commit (highest flushed batch sequence).
    pub watermark: u64,
    /// Number of indexed base-table files at commit (staleness check).
    pub files: Option<u64>,
    /// Per-dimension cell extents at commit.
    pub extents: Extents,
    /// The exact data files (path, length) the view's Slices point into.
    /// Slice files are immutable once renamed into place, so the pinned
    /// list stays valid even while a later transaction adds files.
    pub data_files: Option<Vec<(String, u64)>>,
    /// The encoded [`SplittingPolicy`](crate::policy::SplittingPolicy)
    /// this view's cells were produced under. `None` on views published
    /// before online grid adaptation existed (the live policy applies).
    /// Riding the view — rather than a side-channel revision counter —
    /// is what keeps a pinned reader's extents and cell geometry from
    /// ever coming from two different grid epochs: a regrid publishes
    /// both through the same single `m:view` put.
    pub policy: Option<Vec<u8>>,
    /// Whether this view was decoded from a persisted `m:view` record
    /// (`true`) or synthesized from legacy meta keys for an index built
    /// before views existed (`false`). Not serialized.
    pub versioned: bool,
}

impl ReadView {
    /// Serialize (the `versioned` marker is implied by presence).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u64(&mut buf, self.generation);
        codec::put_u32(&mut buf, self.pending as u32);
        codec::put_u64(&mut buf, self.watermark);
        match self.files {
            Some(n) => {
                codec::put_u32(&mut buf, 1);
                codec::put_u64(&mut buf, n);
            }
            None => codec::put_u32(&mut buf, 0),
        }
        codec::put_bytes(&mut buf, &self.extents.encode());
        match &self.data_files {
            Some(files) => {
                codec::put_u32(&mut buf, 1);
                codec::put_u32(&mut buf, files.len() as u32);
                for (path, len) in files {
                    codec::put_str(&mut buf, path);
                    codec::put_u64(&mut buf, *len);
                }
            }
            None => codec::put_u32(&mut buf, 0),
        }
        // Optional tail: only present when a policy rides the view, so
        // views published before grid adaptation stay byte-identical.
        if let Some(policy) = &self.policy {
            codec::put_u32(&mut buf, 1);
            codec::put_bytes(&mut buf, policy);
        }
        buf
    }

    /// Decode a stored view; the result is marked `versioned`.
    pub fn decode(bytes: &[u8]) -> Result<ReadView> {
        let mut d = Decoder::new(bytes);
        let generation = d.u64()?;
        let pending = match d.u32()? {
            0 => false,
            1 => true,
            n => return Err(DgfError::Corrupt(format!("bad view pending flag {n}"))),
        };
        let watermark = d.u64()?;
        let files = match d.u32()? {
            0 => None,
            _ => Some(d.u64()?),
        };
        let extents = Extents::decode(d.bytes()?)?;
        let data_files = match d.u32()? {
            0 => None,
            _ => {
                let n = d.u32()? as usize;
                let mut files = Vec::with_capacity(n);
                for _ in 0..n {
                    let path = d.str()?.to_owned();
                    let len = d.u64()?;
                    files.push((path, len));
                }
                Some(files)
            }
        };
        let policy = if d.remaining() == 0 {
            None
        } else {
            match d.u32()? {
                0 => None,
                _ => Some(d.bytes()?.to_vec()),
            }
        };
        if d.remaining() != 0 {
            return Err(DgfError::Corrupt("read view has trailing bytes".into()));
        }
        Ok(ReadView {
            generation,
            pending,
            watermark,
            files,
            extents,
            data_files,
            policy,
            versioned: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfu::GfuKey;

    #[test]
    fn view_round_trips() {
        let mut extents = Extents::empty(2);
        extents.observe(&GfuKey::new(vec![3, -1]));
        let v = ReadView {
            generation: 9,
            pending: true,
            watermark: 41,
            files: Some(4),
            extents,
            data_files: Some(vec![
                ("/warehouse/idx/data/part-r-00000-00000".into(), 512),
                ("/warehouse/idx/data/part-r-00009-00001".into(), 90),
            ]),
            policy: None,
            versioned: true,
        };
        assert_eq!(ReadView::decode(&v.encode()).unwrap(), v);

        // The policy tail round-trips, and its absence keeps the
        // encoding byte-identical to the pre-adaptation layout.
        let legacy = v.encode();
        let mut with_policy = v.clone();
        with_policy.policy = Some(vec![0xC0, 0xFF, 0xEE]);
        assert_eq!(ReadView::decode(&with_policy.encode()).unwrap(), with_policy);
        assert_eq!(v.encode(), legacy);

        let bare = ReadView {
            generation: 0,
            pending: false,
            watermark: 0,
            files: None,
            extents: Extents::empty(1),
            data_files: None,
            policy: None,
            versioned: true,
        };
        assert_eq!(ReadView::decode(&bare.encode()).unwrap(), bare);
    }

    #[test]
    fn corrupt_views_are_rejected() {
        assert!(ReadView::decode(b"").is_err());
        let v = ReadView {
            generation: 1,
            pending: false,
            watermark: 0,
            files: None,
            extents: Extents::empty(1),
            data_files: None,
            policy: None,
            versioned: true,
        };
        let mut enc = v.encode();
        enc.push(0x77);
        assert!(ReadView::decode(&enc).is_err());
    }
}
