//! Splitting-policy advisor — the paper's future work (§8): "an algorithm
//! to find the best splitting policy for DGFIndex based on the
//! distribution of the meter data and the query history".
//!
//! The advisor fits per-dimension equi-width histograms to a data sample,
//! then grid-searches candidate interval sizes (log-spaced per dimension)
//! against a cost model evaluated over the query history:
//!
//! * **index cost** — every cell overlapping a query region costs one
//!   key-value lookup; more, smaller cells mean more lookups (the paper's
//!   Figures 12–13 trend);
//! * **boundary cost** — rows in partially-covered edge cells must be
//!   read from disk; fewer, larger cells mean fatter boundaries (the
//!   paper's Table 3/4 trend);
//! * **maintenance cost** — a regularizer proportional to total cell
//!   count (index size, Table 2).
//!
//! The optimum trades these exactly the way the paper's Large/Medium/
//! Small comparison does; the advisor automates the choice.

use dgf_common::{DgfError, Result, Row, Schema, ValueType};
use dgf_query::{Predicate, Query};

use crate::policy::{DimPolicy, SplittingPolicy};

/// Per-dimension statistics from a data sample.
#[derive(Debug, Clone)]
pub struct DimStats {
    /// Column name.
    pub name: String,
    /// Column type (Int, Date, or Float).
    pub vtype: ValueType,
    /// Minimum sampled value (as f64).
    pub min: f64,
    /// Maximum sampled value (as f64).
    pub max: f64,
    /// Distinct-value estimate from the sample.
    pub distinct: u64,
    /// Equi-width histogram of the sample (counts per bucket).
    pub histogram: Vec<u64>,
}

impl DimStats {
    /// Domain width.
    pub fn width(&self) -> f64 {
        (self.max - self.min).max(0.0)
    }
}

/// Collect [`DimStats`] for `dims` over a sample of rows.
pub fn collect_stats(sample: &[Row], schema: &Schema, dims: &[String]) -> Result<Vec<DimStats>> {
    const BUCKETS: usize = 64;
    let mut out = Vec::with_capacity(dims.len());
    for d in dims {
        let idx = schema.index_of(d)?;
        let vtype = schema.field(idx).vtype;
        if vtype == ValueType::Str {
            return Err(DgfError::Index(format!(
                "dimension {d:?} is a string column; the grid needs numeric or date dimensions"
            )));
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut values: Vec<f64> = Vec::with_capacity(sample.len());
        for r in sample {
            let v = &r[idx];
            if v.is_null() {
                continue;
            }
            let x = v.as_f64()?;
            min = min.min(x);
            max = max.max(x);
            values.push(x);
        }
        if values.is_empty() {
            return Err(DgfError::Index(format!("no non-null samples for {d:?}")));
        }
        let width = (max - min).max(f64::MIN_POSITIVE);
        let mut histogram = vec![0u64; BUCKETS];
        for x in &values {
            let b = (((x - min) / width) * BUCKETS as f64) as usize;
            histogram[b.min(BUCKETS - 1)] += 1;
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        out.push(DimStats {
            name: d.clone(),
            vtype,
            min,
            max,
            distinct: sorted.len() as u64,
            histogram,
        });
    }
    Ok(out)
}

/// Cost-model weights.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Cost of one GFU key-value lookup, relative to reading one row.
    pub lookup_cost: f64,
    /// Cost of reading one boundary row (the unit).
    pub row_cost: f64,
    /// Cost per existing GFU entry (index size / maintenance pressure).
    pub cell_cost: f64,
    /// Candidate interval counts tried per dimension.
    pub candidate_counts: Vec<u64>,
    /// Total-cell budget: candidates whose grid exceeds this are skipped.
    pub max_cells: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            lookup_cost: 4.0,
            row_cost: 1.0,
            cell_cost: 0.002,
            candidate_counts: vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000],
            max_cells: 5_000_000,
        }
    }
}

/// One per-dimension range of a historical query, normalized to the
/// dimension domain.
#[derive(Debug, Clone, Copy)]
struct QueryRange {
    /// Fraction of the domain covered (0..=1).
    frac: f64,
}

/// The advisor's recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The chosen policy.
    pub policy: SplittingPolicy,
    /// Interval count per dimension.
    pub counts: Vec<u64>,
    /// Expected cost under the model (arbitrary units; lower is better).
    pub expected_cost: f64,
    /// Expected number of populated cells.
    pub expected_cells: f64,
}

/// Recommend a splitting policy for `dims` given a data sample and a
/// query history.
pub fn recommend_policy(
    sample: &[Row],
    schema: &Schema,
    dims: &[String],
    history: &[Query],
    rows_total: u64,
    config: &AdvisorConfig,
) -> Result<Recommendation> {
    let stats = collect_stats(sample, schema, dims)?;
    if history.is_empty() {
        return Err(DgfError::Index("query history is empty".into()));
    }

    // Normalize the history to per-dimension covered fractions.
    let mut query_ranges: Vec<Vec<QueryRange>> = Vec::with_capacity(history.len());
    for q in history {
        query_ranges.push(
            stats
                .iter()
                .map(|s| QueryRange {
                    frac: covered_fraction(q.predicate(), s),
                })
                .collect(),
        );
    }

    // Grid-search candidate counts per dimension (the search space is
    // |candidates|^dims; dims is 2–4 in practice).
    let n_dims = stats.len();
    let mut best: Option<Recommendation> = None;
    let mut choice = vec![0usize; n_dims];
    loop {
        let counts: Vec<u64> = choice
            .iter()
            .map(|i| config.candidate_counts[*i])
            .collect();
        if let Some(rec) = evaluate(&counts, &stats, &query_ranges, rows_total, config)? {
            if best.as_ref().is_none_or(|b| rec.expected_cost < b.expected_cost) {
                best = Some(rec);
            }
        }
        // Odometer over the candidate grid.
        let mut d = n_dims;
        loop {
            if d == 0 {
                break;
            }
            d -= 1;
            if choice[d] + 1 < config.candidate_counts.len() {
                choice[d] += 1;
                for c in choice[d + 1..].iter_mut() {
                    *c = 0;
                }
                break;
            }
            if d == 0 {
                choice.clear();
                break;
            }
        }
        if choice.is_empty() {
            break;
        }
    }
    best.ok_or_else(|| {
        DgfError::Index("no candidate policy fits within the cell budget".into())
    })
}

/// Fraction of dimension `s`'s domain that the predicate covers (1.0 when
/// the dimension is unconstrained).
fn covered_fraction(pred: &Predicate, s: &DimStats) -> f64 {
    use std::ops::Bound;
    let Some(range) = pred.range_of(&s.name) else {
        return 1.0;
    };
    let width = s.width().max(f64::MIN_POSITIVE);
    let lo = match &range.low {
        Bound::Unbounded => s.min,
        Bound::Included(v) | Bound::Excluded(v) => v.as_f64().unwrap_or(s.min),
    };
    let hi = match &range.high {
        Bound::Unbounded => s.max,
        Bound::Included(v) | Bound::Excluded(v) => v.as_f64().unwrap_or(s.max),
    };
    ((hi.min(s.max) - lo.max(s.min)) / width).clamp(0.0, 1.0)
}

fn evaluate(
    counts: &[u64],
    stats: &[DimStats],
    query_ranges: &[Vec<QueryRange>],
    rows_total: u64,
    config: &AdvisorConfig,
) -> Result<Option<Recommendation>> {
    // Effective cell count per dim cannot exceed its distinct values.
    let eff_counts: Vec<f64> = counts
        .iter()
        .zip(stats)
        .map(|(c, s)| (*c).min(s.distinct).max(1) as f64)
        .collect();
    let total_cells: f64 = eff_counts.iter().product();
    if total_cells > config.max_cells as f64 {
        return Ok(None);
    }
    // Populated cells cannot exceed total rows.
    let expected_cells = total_cells.min(rows_total as f64);

    let mut cost = 0.0;
    for ranges in query_ranges {
        // Cells overlapping the query region.
        let mut region_cells = 1.0;
        // Fraction of region rows in fully-covered (inner) cells.
        let mut inner_frac = 1.0;
        // Fraction of the table the query selects.
        let mut sel = 1.0;
        for (r, n) in ranges.iter().zip(&eff_counts) {
            let cells_d = (r.frac * n).ceil() + 1.0;
            region_cells *= cells_d.min(*n);
            // Of the cells the range spans, the two edge cells are
            // boundary; the inner fraction of *rows* follows.
            let spanned = (r.frac * n).max(f64::MIN_POSITIVE);
            let inner_d = ((spanned - 2.0) / spanned).max(0.0);
            inner_frac *= inner_d;
            sel *= r.frac;
        }
        let region_rows = sel * rows_total as f64;
        let boundary_rows = region_rows * (1.0 - inner_frac);
        cost += config.lookup_cost * region_cells + config.row_cost * boundary_rows;
    }
    cost /= query_ranges.len() as f64;
    cost += config.cell_cost * expected_cells;

    let policy = SplittingPolicy::new(
        counts
            .iter()
            .zip(stats)
            .map(|(c, s)| {
                let n = (*c).min(s.distinct).max(1);
                match s.vtype {
                    ValueType::Float => {
                        let interval = (s.width() / n as f64).max(f64::MIN_POSITIVE);
                        DimPolicy::float(&s.name, s.min, interval)
                    }
                    ValueType::Date => {
                        let interval =
                            ((s.width() / n as f64).ceil() as i64).max(1);
                        DimPolicy::date(&s.name, s.min as i64, interval)
                    }
                    _ => {
                        let interval =
                            ((s.width() / n as f64).ceil() as i64).max(1);
                        DimPolicy::int(&s.name, s.min as i64, interval)
                    }
                }
            })
            .collect(),
    )?;
    Ok(Some(Recommendation {
        policy,
        counts: counts.to_vec(),
        expected_cost: cost,
        expected_cells,
    }))
}

/// Convenience: derive the history from plain predicates.
pub fn history_from_predicates(preds: &[Predicate]) -> Vec<Query> {
    preds
        .iter()
        .map(|p| Query::Aggregate {
            aggs: vec![dgf_query::AggFunc::Count],
            predicate: p.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::Value;
    use dgf_query::ColumnRange;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("ts", ValueType::Date),
            ("power", ValueType::Float),
        ])
    }

    fn sample(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i % 1000),
                    Value::Date(15706 + i % 30),
                    Value::Float((i % 97) as f64 / 3.0),
                ]
            })
            .collect()
    }

    fn narrow_history() -> Vec<Query> {
        // Queries covering ~2% of users and ~10% of days.
        history_from_predicates(&[
            Predicate::all()
                .and("user_id", ColumnRange::half_open(Value::Int(100), Value::Int(120)))
                .and("ts", ColumnRange::half_open(Value::Date(15710), Value::Date(15713))),
            Predicate::all()
                .and("user_id", ColumnRange::half_open(Value::Int(500), Value::Int(520)))
                .and("ts", ColumnRange::half_open(Value::Date(15706), Value::Date(15709))),
        ])
    }

    fn wide_history() -> Vec<Query> {
        history_from_predicates(&[Predicate::all()
            .and("user_id", ColumnRange::half_open(Value::Int(0), Value::Int(900)))
            .and("ts", ColumnRange::half_open(Value::Date(15706), Value::Date(15734)))])
    }

    #[test]
    fn stats_reflect_the_sample() {
        let s = sample(3000);
        let stats = collect_stats(&s, &schema(), &["user_id".into(), "ts".into()]).unwrap();
        assert_eq!(stats[0].min, 0.0);
        assert_eq!(stats[0].max, 999.0);
        assert_eq!(stats[0].distinct, 1000);
        assert_eq!(stats[1].distinct, 30);
        assert_eq!(stats[0].histogram.iter().sum::<u64>(), 3000);
    }

    #[test]
    fn string_dimension_rejected() {
        let s = Schema::from_pairs(&[("name", ValueType::Str)]);
        let rows = vec![vec![Value::Str("x".into())]];
        assert!(collect_stats(&rows, &s, &["name".into()]).is_err());
    }

    #[test]
    fn recommends_valid_policy() {
        let s = sample(3000);
        let rec = recommend_policy(
            &s,
            &schema(),
            &["user_id".into(), "ts".into()],
            &narrow_history(),
            1_000_000,
            &AdvisorConfig::default(),
        )
        .unwrap();
        assert_eq!(rec.policy.arity(), 2);
        assert_eq!(rec.policy.dims()[0].name, "user_id");
        // Counts never exceed distinct values.
        assert!(rec.counts[1] <= 1000);
        assert!(rec.expected_cost.is_finite());
    }

    #[test]
    fn narrow_queries_prefer_finer_grids_than_wide_queries() {
        let s = sample(3000);
        let cfg = AdvisorConfig::default();
        let dims = vec!["user_id".to_owned(), "ts".to_owned()];
        let narrow = recommend_policy(&s, &schema(), &dims, &narrow_history(), 1_000_000, &cfg)
            .unwrap();
        let wide =
            recommend_policy(&s, &schema(), &dims, &wide_history(), 1_000_000, &cfg).unwrap();
        // Selective queries want fine cells (less boundary over-read);
        // full sweeps want coarse cells (fewer lookups).
        let narrow_cells: u64 = narrow.counts.iter().product();
        let wide_cells: u64 = wide.counts.iter().product();
        assert!(
            narrow_cells > wide_cells,
            "narrow {narrow_cells} vs wide {wide_cells}"
        );
    }

    #[test]
    fn cell_budget_is_respected() {
        let s = sample(3000);
        let cfg = AdvisorConfig {
            max_cells: 50,
            ..AdvisorConfig::default()
        };
        let rec = recommend_policy(
            &s,
            &schema(),
            &["user_id".into(), "ts".into()],
            &narrow_history(),
            1_000_000,
            &cfg,
        )
        .unwrap();
        let cells: u64 = rec
            .counts
            .iter()
            .zip(&["user_id", "ts"])
            .map(|(c, _)| *c)
            .product();
        assert!(cells <= 50, "{cells}");
    }

    #[test]
    fn empty_history_is_an_error() {
        let s = sample(100);
        assert!(recommend_policy(
            &s,
            &schema(),
            &["user_id".into()],
            &[],
            1000,
            &AdvisorConfig::default()
        )
        .is_err());
    }

    #[test]
    fn recommended_policy_builds_a_working_index() {
        use dgf_format::FileFormat;
        use dgf_hive::{HiveContext, ScanEngine};
        use dgf_kvstore::MemKvStore;
        use dgf_mapreduce::MrEngine;
        use dgf_query::Engine;
        use dgf_storage::SimHdfs;
        use std::sync::Arc;

        let rows = sample(2000);
        let tmp = dgf_common::TempDir::new("advisor").unwrap();
        let hdfs = SimHdfs::open(tmp.path()).unwrap();
        let ctx = HiveContext::new(hdfs, MrEngine::new(2));
        let table = ctx
            .create_table("t", Arc::new(schema()), FileFormat::Text)
            .unwrap();
        ctx.load_rows(&table, &rows, 2).unwrap();

        let rec = recommend_policy(
            &rows,
            &schema(),
            &["user_id".into(), "ts".into()],
            &narrow_history(),
            rows.len() as u64,
            &AdvisorConfig::default(),
        )
        .unwrap();
        let (idx, _) = crate::DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&table),
            rec.policy,
            vec![dgf_query::AggFunc::Count],
            Arc::new(MemKvStore::new()),
            "dgf_advised",
        )
        .unwrap();
        let q = &narrow_history()[0];
        let truth = ScanEngine::new(Arc::clone(&ctx), table).run(q).unwrap();
        let got = crate::DgfEngine::new(Arc::new(idx)).run(q).unwrap();
        assert!(got.result.approx_eq(&truth.result, 1e-9));
    }
}
