//! Fresh-data sources: the planner-side half of streaming ingestion.
//!
//! A [`FreshSource`] is an in-memory buffer of acknowledged-but-unflushed
//! rows (the `dgf-ingest` crate's memtable) registered on a
//! [`DgfIndex`](crate::DgfIndex). The planner consults it so that queries
//! observe every acknowledged write *before* the background flusher turns
//! the buffers into persisted Slices: covered cells contribute their
//! running partial aggregate states exactly like persisted GFU headers,
//! boundary cells contribute raw rows that the engine re-filters with the
//! full predicate.
//!
//! The trait lives in `dgf-core` (not `dgf-ingest`) so the dependency
//! points one way: the ingest crate implements the trait and holds no
//! reference back to the index.

use dgf_common::Row;

use crate::gfu::GfuKey;

/// One grid cell's worth of buffered, unflushed rows.
#[derive(Debug, Clone)]
pub struct FreshCell {
    /// The cell's coordinates (standardized exactly like persisted keys).
    pub key: GfuKey,
    /// Running partial aggregate states, encoded with the *index's*
    /// pre-computed aggregate list (`AggSet::encode_states`), so a covered
    /// cell merges through the same header path as a persisted `GfuValue`.
    pub header: Vec<u8>,
    /// Number of buffered rows in the cell.
    pub record_count: u64,
    /// The buffered rows themselves, for boundary cells (and for queries
    /// whose shape cannot use headers at all).
    pub rows: Vec<Row>,
}

/// A source of acknowledged-but-unflushed rows, consulted at plan time.
///
/// `flushed_seq` is the index's persisted ingest watermark (see
/// `DgfIndex::ingest_watermark`): the highest ingest batch sequence whose
/// rows have been committed to Slices. Implementations must return only
/// data *newer* than it, so a row is never counted both from the store
/// and from the buffer.
pub trait FreshSource: Send + Sync {
    /// Cheap emptiness probe so idle sources cost the planner nothing.
    fn has_fresh(&self) -> bool;

    /// Snapshot of all buffered cells holding rows with batch sequence
    /// greater than `flushed_seq`. The same coordinates may appear more
    /// than once (e.g. an actively-filling buffer and one staged for
    /// flush); the planner absorbs each entry independently.
    fn fresh_cells(&self, flushed_seq: u64) -> Vec<FreshCell>;

    /// Flush-publication epoch: even when quiescent, odd while a flush is
    /// publishing (staging through watermark advance). The planner reads
    /// it before and after fetching; a change (or an odd value) means the
    /// fetch may have seen a half-published flush, so it re-fetches.
    fn flush_epoch(&self) -> u64 {
        0
    }
}
