//! # dgf-mapreduce
//!
//! A miniature in-process MapReduce engine: the execution substrate for
//! both index construction (paper §4.2, Algorithms 1–2) and query
//! execution (scan jobs with map-side filtering and partial aggregation).
//!
//! The engine preserves the structure that matters for the reproduction:
//!
//! * one **map task per input split**, run on a bounded worker pool (the
//!   paper's cluster runs up to 5 mappers per node);
//! * a **deterministic hash shuffle** into `R` partitions (FNV-1a, so
//!   reducer output placement is reproducible run to run);
//! * **sorted, grouped reduce input**, with one reduce *task* per
//!   partition — the reducer callback owns the whole task so it can open
//!   one output file per task exactly like a Hadoop reducer;
//! * optional **combiners** for map-side partial aggregation;
//! * **job counters** (map input/output records, reduce groups, shuffled
//!   pairs) used by benches to attribute work.

#![warn(missing_docs)]

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use dgf_common::{DgfError, Result, Stopwatch};

/// Deterministic FNV-1a `Hasher` so shuffle partitioning is stable across
/// runs and platforms (std's `RandomState` is seeded per process).
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Hash a key to its reduce partition.
pub fn partition_of<K: Hash>(key: &K, num_reducers: usize) -> usize {
    let mut h = FnvHasher::default();
    key.hash(&mut h);
    (h.finish() % num_reducers as u64) as usize
}

/// Counters accumulated over a job run.
#[derive(Debug, Default)]
pub struct JobCounters {
    /// Inputs consumed by map tasks.
    pub map_inputs: AtomicU64,
    /// Pairs emitted by mappers (before combining).
    pub map_outputs: AtomicU64,
    /// Pairs crossing the shuffle (after combining).
    pub shuffled_pairs: AtomicU64,
    /// Distinct keys seen by reducers.
    pub reduce_groups: AtomicU64,
}

/// Timing and counter report for a finished job.
#[derive(Debug, Default, Clone)]
pub struct JobReport {
    /// Inputs consumed by map tasks.
    pub map_inputs: u64,
    /// Pairs emitted by mappers (before combining).
    pub map_outputs: u64,
    /// Pairs crossing the shuffle (after combining).
    pub shuffled_pairs: u64,
    /// Distinct keys seen by reducers.
    pub reduce_groups: u64,
    /// Wall time of the map phase (includes combine).
    pub map_time: Duration,
    /// Wall time of shuffle sort + reduce phase.
    pub reduce_time: Duration,
}

impl JobReport {
    /// Attach this report's counters to a span under the `mr.*` metric
    /// names (phase wall times become microsecond counters), so MapReduce
    /// stages show up in a [`QueryProfile`](dgf_common::obs::QueryProfile).
    pub fn attach_to_span(&self, span: &dgf_common::obs::SpanGuard) {
        use dgf_common::obs::names;
        for (name, v) in [
            (names::MR_MAP_INPUTS, self.map_inputs),
            (names::MR_MAP_OUTPUTS, self.map_outputs),
            (names::MR_SHUFFLED_PAIRS, self.shuffled_pairs),
            (names::MR_REDUCE_GROUPS, self.reduce_groups),
            (names::MR_MAP_TIME_US, self.map_time.as_micros() as u64),
            (names::MR_REDUCE_TIME_US, self.reduce_time.as_micros() as u64),
        ] {
            if v > 0 {
                span.add(name, v);
            }
        }
    }
}

/// Output of a job: one `T` per reduce task (or per map task for
/// map-only jobs), plus the report.
#[derive(Debug)]
pub struct JobOutput<T> {
    /// Task outputs. For map-reduce jobs, index = reducer id; for map-only
    /// jobs, index = input order.
    pub outputs: Vec<T>,
    /// Counters and timings.
    pub report: JobReport,
}

/// A custom shuffle partitioner: `(key, num_reducers) -> reducer id`.
/// Must return a value `< num_reducers`.
pub type PartitionerFn<'a, K> = &'a (dyn Fn(&K, usize) -> usize + Sync);

/// Collects mapper emissions, partitioned for the shuffle.
pub struct Emitter<'p, K, V> {
    partitions: Vec<Vec<(K, V)>>,
    partitioner: Option<PartitionerFn<'p, K>>,
    emitted: u64,
}

impl<K: Hash, V> Emitter<'_, K, V> {
    fn new(num_reducers: usize) -> Self {
        Emitter {
            partitions: (0..num_reducers).map(|_| Vec::new()).collect(),
            partitioner: None,
            emitted: 0,
        }
    }

    /// Emit one intermediate pair.
    pub fn emit(&mut self, key: K, value: V) {
        let n = self.partitions.len();
        let p = match self.partitioner {
            Some(f) => f(&key, n).min(n - 1),
            None => partition_of(&key, n),
        };
        self.partitions[p].push((key, value));
        self.emitted += 1;
    }
}

/// The engine: a bounded pool of worker threads shared by the map and
/// reduce phases of each submitted job.
#[derive(Debug, Clone)]
pub struct MrEngine {
    threads: usize,
}

impl Default for MrEngine {
    fn default() -> Self {
        MrEngine::new(default_parallelism())
    }
}

/// Worker threads used by [`MrEngine::default`].
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// A map function: `(task_id, input, emitter)`.
pub type MapFn<'a, I, K, V> =
    &'a (dyn for<'p> Fn(usize, I, &mut Emitter<'p, K, V>) -> Result<()> + Sync);
/// A combine function: `(key, values) -> combined values`.
pub type CombineFn<'a, K, V> = &'a (dyn Fn(&K, Vec<V>) -> Result<Vec<V>> + Sync);
/// A reduce-task function: `(task_id, sorted groups) -> task output`.
pub type ReduceTaskFn<'a, K, V, T> = &'a (dyn Fn(usize, Vec<(K, Vec<V>)>) -> Result<T> + Sync);

impl MrEngine {
    /// An engine with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        MrEngine {
            threads: threads.max(1),
        }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run a full map-shuffle-reduce job with the default hash
    /// partitioner.
    pub fn map_reduce<I, K, V, T>(
        &self,
        inputs: Vec<I>,
        num_reducers: usize,
        mapper: MapFn<'_, I, K, V>,
        combiner: Option<CombineFn<'_, K, V>>,
        reduce_task: ReduceTaskFn<'_, K, V, T>,
    ) -> Result<JobOutput<T>>
    where
        I: Send,
        K: Ord + Hash + Clone + Send,
        V: Send,
        T: Send,
    {
        self.map_reduce_partitioned(inputs, num_reducers, None, mapper, combiner, reduce_task)
    }

    /// Run a full map-shuffle-reduce job with a custom shuffle
    /// partitioner (used by DGFIndex's Slice-placement policies).
    pub fn map_reduce_partitioned<I, K, V, T>(
        &self,
        inputs: Vec<I>,
        num_reducers: usize,
        partitioner: Option<PartitionerFn<'_, K>>,
        mapper: MapFn<'_, I, K, V>,
        combiner: Option<CombineFn<'_, K, V>>,
        reduce_task: ReduceTaskFn<'_, K, V, T>,
    ) -> Result<JobOutput<T>>
    where
        I: Send,
        K: Ord + Hash + Clone + Send,
        V: Send,
        T: Send,
    {
        if num_reducers == 0 {
            return Err(DgfError::Job(
                "map_reduce requires at least 1 reducer".into(),
            ));
        }
        let counters = JobCounters::default();
        let mut report = JobReport::default();

        // ---- Map phase -----------------------------------------------
        let map_watch = Stopwatch::start();
        let partition_buckets: Vec<Mutex<Vec<(K, V)>>> =
            (0..num_reducers).map(|_| Mutex::new(Vec::new())).collect();
        {
            let work: Mutex<std::vec::IntoIter<(usize, I)>> = Mutex::new(
                inputs
                    .into_iter()
                    .enumerate()
                    .collect::<Vec<_>>()
                    .into_iter(),
            );
            let first_err: Mutex<Option<DgfError>> = Mutex::new(None);
            crossbeam::scope(|s| {
                for _ in 0..self.threads {
                    s.spawn(|_| loop {
                        if first_err.lock().is_some() {
                            return;
                        }
                        let item = work.lock().next();
                        let Some((task_id, input)) = item else { return };
                        counters.map_inputs.fetch_add(1, Ordering::Relaxed);
                        let mut emitter = Emitter::new(num_reducers);
                        emitter.partitioner = partitioner;
                        let run = || -> Result<()> {
                            mapper(task_id, input, &mut emitter)?;
                            counters
                                .map_outputs
                                .fetch_add(emitter.emitted, Ordering::Relaxed);
                            for (p, mut pairs) in emitter.partitions.drain(..).enumerate() {
                                if pairs.is_empty() {
                                    continue;
                                }
                                if let Some(c) = combiner {
                                    pairs = combine_pairs(pairs, c)?;
                                }
                                counters
                                    .shuffled_pairs
                                    .fetch_add(pairs.len() as u64, Ordering::Relaxed);
                                partition_buckets[p].lock().append(&mut pairs);
                            }
                            Ok(())
                        };
                        if let Err(e) = run() {
                            let mut slot = first_err.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    });
                }
            })
            .map_err(|_| DgfError::Job("a map task panicked".into()))?;
            if let Some(e) = first_err.into_inner() {
                return Err(e);
            }
        }
        report.map_time = map_watch.elapsed();

        // ---- Shuffle sort + reduce phase -----------------------------
        let reduce_watch = Stopwatch::start();
        let mut outputs: Vec<Option<T>> = (0..num_reducers).map(|_| None).collect();
        {
            type TaskSlot<K, V> = Mutex<Option<Vec<(K, V)>>>;
            let tasks: Vec<TaskSlot<K, V>> = partition_buckets
                .into_iter()
                .map(|m| Mutex::new(Some(m.into_inner())))
                .collect();
            let out_slots: Vec<Mutex<&mut Option<T>>> =
                outputs.iter_mut().map(Mutex::new).collect();
            let next_task = AtomicUsize::new(0);
            let first_err: Mutex<Option<DgfError>> = Mutex::new(None);
            crossbeam::scope(|s| {
                for _ in 0..self.threads.min(num_reducers) {
                    s.spawn(|_| loop {
                        if first_err.lock().is_some() {
                            return;
                        }
                        let tid = next_task.fetch_add(1, Ordering::Relaxed);
                        if tid >= num_reducers {
                            return;
                        }
                        let pairs = tasks[tid].lock().take().expect("task taken once");
                        let groups = group_sorted(pairs);
                        counters
                            .reduce_groups
                            .fetch_add(groups.len() as u64, Ordering::Relaxed);
                        match reduce_task(tid, groups) {
                            Ok(t) => **out_slots[tid].lock() = Some(t),
                            Err(e) => {
                                let mut slot = first_err.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                return;
                            }
                        }
                    });
                }
            })
            .map_err(|_| DgfError::Job("a reduce task panicked".into()))?;
            if let Some(e) = first_err.into_inner() {
                return Err(e);
            }
        }
        report.reduce_time = reduce_watch.elapsed();
        report.map_inputs = counters.map_inputs.load(Ordering::Relaxed);
        report.map_outputs = counters.map_outputs.load(Ordering::Relaxed);
        report.shuffled_pairs = counters.shuffled_pairs.load(Ordering::Relaxed);
        report.reduce_groups = counters.reduce_groups.load(Ordering::Relaxed);

        let outputs = outputs
            .into_iter()
            .map(|o| o.ok_or_else(|| DgfError::Job("reduce task produced no output".into())))
            .collect::<Result<Vec<T>>>()?;
        Ok(JobOutput { outputs, report })
    }

    /// Run a map-only job: one output per input, in input order.
    pub fn map_only<I, T>(
        &self,
        inputs: Vec<I>,
        mapper: &(dyn Fn(usize, I) -> Result<T> + Sync),
    ) -> Result<JobOutput<T>>
    where
        I: Send,
        T: Send,
    {
        self.map_only_with(inputs, &|| (), &|task_id, input, ()| mapper(task_id, input))
    }

    /// [`Self::map_only`] with per-worker scratch state.
    ///
    /// `init` runs once per worker thread; the resulting scratch value is
    /// passed mutably to every task that worker executes. Batch-oriented
    /// mappers use this to reuse row/batch buffers across the tasks of a
    /// scan instead of re-boxing values per task, while keeping the
    /// scratch off the cross-task output path (outputs still come back in
    /// input order, exactly as `map_only`).
    pub fn map_only_with<I, T, S>(
        &self,
        inputs: Vec<I>,
        init: &(dyn Fn() -> S + Sync),
        mapper: &(dyn Fn(usize, I, &mut S) -> Result<T> + Sync),
    ) -> Result<JobOutput<T>>
    where
        I: Send,
        T: Send,
    {
        let n = inputs.len();
        let watch = Stopwatch::start();
        let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();
        {
            let work: Mutex<std::vec::IntoIter<(usize, I)>> = Mutex::new(
                inputs
                    .into_iter()
                    .enumerate()
                    .collect::<Vec<_>>()
                    .into_iter(),
            );
            let out_slots: Vec<Mutex<&mut Option<T>>> =
                outputs.iter_mut().map(Mutex::new).collect();
            let first_err: Mutex<Option<DgfError>> = Mutex::new(None);
            crossbeam::scope(|s| {
                for _ in 0..self.threads {
                    s.spawn(|_| {
                        let mut scratch = init();
                        loop {
                            if first_err.lock().is_some() {
                                return;
                            }
                            let item = work.lock().next();
                            let Some((task_id, input)) = item else { return };
                            match mapper(task_id, input, &mut scratch) {
                                Ok(t) => **out_slots[task_id].lock() = Some(t),
                                Err(e) => {
                                    let mut slot = first_err.lock();
                                    if slot.is_none() {
                                        *slot = Some(e);
                                    }
                                    return;
                                }
                            }
                        }
                    });
                }
            })
            .map_err(|_| DgfError::Job("a map task panicked".into()))?;
            if let Some(e) = first_err.into_inner() {
                return Err(e);
            }
        }
        let outputs = outputs
            .into_iter()
            .map(|o| o.ok_or_else(|| DgfError::Job("map task produced no output".into())))
            .collect::<Result<Vec<T>>>()?;
        let report = JobReport {
            map_inputs: n as u64,
            map_time: watch.elapsed(),
            ..JobReport::default()
        };
        Ok(JobOutput { outputs, report })
    }
}

fn combine_pairs<K: Ord + Clone, V>(
    pairs: Vec<(K, V)>,
    c: CombineFn<'_, K, V>,
) -> Result<Vec<(K, V)>> {
    let groups = group_sorted(pairs);
    let mut out = Vec::with_capacity(groups.len());
    for (k, vs) in groups {
        for v in c(&k, vs)? {
            out.push((k.clone(), v));
        }
    }
    Ok(out)
}

/// Sort pairs by key and group equal keys. Values within a group are
/// unordered, as in Hadoop without a secondary sort.
fn group_sorted<K: Ord, V>(mut pairs: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in pairs {
        match out.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// The canonical word count, exercising map, combine, shuffle, reduce.
    #[test]
    fn word_count() {
        let engine = MrEngine::new(4);
        let docs = vec![
            "a b a".to_owned(),
            "b c".to_owned(),
            "a c c".to_owned(),
            String::new(),
        ];
        let out = engine
            .map_reduce(
                docs,
                3,
                &|_, doc, e| {
                    for w in doc.split_whitespace() {
                        e.emit(w.to_owned(), 1u64);
                    }
                    Ok(())
                },
                Some(&|_, vs| Ok(vec![vs.iter().sum::<u64>()])),
                &|_, groups| {
                    Ok(groups
                        .into_iter()
                        .map(|(k, vs)| (k, vs.iter().sum::<u64>()))
                        .collect::<Vec<_>>())
                },
            )
            .unwrap();
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for task in out.outputs {
            for (k, v) in task {
                assert!(counts.insert(k, v).is_none(), "key must be in one partition");
            }
        }
        assert_eq!(counts.get("a"), Some(&3));
        assert_eq!(counts.get("b"), Some(&2));
        assert_eq!(counts.get("c"), Some(&3));
        assert_eq!(out.report.map_inputs, 4);
        assert_eq!(out.report.map_outputs, 8);
        // Combiner collapses within-mapper duplicates, so shuffled <= emitted.
        assert!(out.report.shuffled_pairs <= out.report.map_outputs);
        assert_eq!(out.report.reduce_groups, 3);
    }

    #[test]
    fn reduce_input_is_sorted_and_grouped() {
        let engine = MrEngine::new(2);
        let out = engine
            .map_reduce(
                vec![vec![3, 1, 2, 1, 3, 3]],
                1,
                &|_, xs: Vec<i32>, e| {
                    for x in xs {
                        e.emit(x, ());
                    }
                    Ok(())
                },
                None,
                &|_, groups| {
                    let keys: Vec<i32> = groups.iter().map(|(k, _)| *k).collect();
                    assert_eq!(keys, vec![1, 2, 3]);
                    let sizes: Vec<usize> = groups.iter().map(|(_, v)| v.len()).collect();
                    assert_eq!(sizes, vec![2, 1, 3]);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(out.outputs.len(), 1);
    }

    #[test]
    fn partitioning_is_deterministic_and_in_range() {
        for r in 1..8usize {
            let p = partition_of(&"key", r);
            assert!(p < r);
            assert_eq!(p, partition_of(&"key", r));
        }
    }

    #[test]
    fn custom_partitioner_controls_placement() {
        let engine = MrEngine::new(2);
        // Route everything to reducer 0 regardless of key.
        let out = engine
            .map_reduce_partitioned(
                vec![vec![1, 2, 3, 4, 5]],
                3,
                Some(&|_k: &i32, _n| 0),
                &|_, xs: Vec<i32>, e| {
                    for x in xs {
                        e.emit(x, ());
                    }
                    Ok(())
                },
                None,
                &|_, groups| Ok(groups.len()),
            )
            .unwrap();
        assert_eq!(out.outputs, vec![5, 0, 0]);
        // Out-of-range partitioner values are clamped, not a panic.
        let out = engine
            .map_reduce_partitioned(
                vec![vec![7]],
                2,
                Some(&|_k: &i32, _n| 99),
                &|_, xs: Vec<i32>, e| {
                    for x in xs {
                        e.emit(x, ());
                    }
                    Ok(())
                },
                None,
                &|_, groups| Ok(groups.len()),
            )
            .unwrap();
        assert_eq!(out.outputs, vec![0, 1]);
    }

    #[test]
    fn map_errors_abort_the_job() {
        let engine = MrEngine::new(4);
        let res = engine.map_reduce(
            vec![1, 2, 3],
            1,
            &|_, x: i32, e: &mut Emitter<i32, ()>| {
                if x == 2 {
                    return Err(DgfError::Job("boom".into()));
                }
                e.emit(x, ());
                Ok(())
            },
            None,
            &|_, _| Ok(()),
        );
        assert!(matches!(res, Err(DgfError::Job(m)) if m == "boom"));
    }

    #[test]
    fn reduce_errors_abort_the_job() {
        let engine = MrEngine::new(2);
        let res = engine.map_reduce(
            vec![1],
            2,
            &|_, x: i32, e| {
                e.emit(x, ());
                Ok(())
            },
            None,
            &|tid, _| -> Result<()> {
                if tid == 0 {
                    Err(DgfError::Job("r".into()))
                } else {
                    Ok(())
                }
            },
        );
        assert!(res.is_err());
    }

    #[test]
    fn map_only_preserves_input_order() {
        let engine = MrEngine::new(4);
        let out = engine
            .map_only(vec![10, 20, 30, 40], &|tid, x: i32| Ok((tid, x * 2)))
            .unwrap();
        assert_eq!(out.outputs, vec![(0, 20), (1, 40), (2, 60), (3, 80)]);
    }

    #[test]
    fn single_thread_engine_works() {
        let engine = MrEngine::new(1);
        let out = engine
            .map_reduce(
                vec![vec![1, 2], vec![3]],
                2,
                &|_, xs: Vec<i32>, e| {
                    for x in xs {
                        e.emit(x % 2, x as u64);
                    }
                    Ok(())
                },
                None,
                &|_, groups| Ok(groups.into_iter().map(|(_, v)| v.len()).sum::<usize>()),
            )
            .unwrap();
        assert_eq!(out.outputs.iter().sum::<usize>(), 3);
    }

    #[test]
    fn empty_input_still_runs_reducers() {
        let engine = MrEngine::new(2);
        let out = engine
            .map_reduce(
                Vec::<i32>::new(),
                3,
                &|_, _, _: &mut Emitter<i32, i32>| Ok(()),
                None,
                &|tid, groups| {
                    assert!(groups.is_empty());
                    Ok(tid)
                },
            )
            .unwrap();
        assert_eq!(out.outputs, vec![0, 1, 2]);
    }

    #[test]
    fn group_sorted_handles_duplicates() {
        let g = group_sorted(vec![(2, 'a'), (1, 'b'), (2, 'c')]);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, 1);
        assert_eq!(g[1].1.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sum-by-key through the engine equals a sequential fold,
        /// regardless of thread count, reducer count, or combiner use.
        #[test]
        fn sum_by_key_matches_sequential(
            data in prop::collection::vec(
                prop::collection::vec((0u8..16, 1u64..100), 0..20), 0..8),
            reducers in 1usize..5,
            threads in 1usize..5,
            use_combiner in any::<bool>(),
        ) {
            let mut expected: BTreeMap<u8, u64> = BTreeMap::new();
            for chunk in &data {
                for (k, v) in chunk {
                    *expected.entry(*k).or_default() += v;
                }
            }
            let engine = MrEngine::new(threads);
            let combiner: Option<CombineFn<'_, u8, u64>> = if use_combiner {
                Some(&|_, vs| Ok(vec![vs.iter().sum()]))
            } else {
                None
            };
            let out = engine.map_reduce(
                data,
                reducers,
                &|_, chunk: Vec<(u8, u64)>, e| {
                    for (k, v) in chunk {
                        e.emit(k, v);
                    }
                    Ok(())
                },
                combiner,
                &|_, groups| Ok(groups
                    .into_iter()
                    .map(|(k, vs)| (k, vs.iter().sum::<u64>()))
                    .collect::<Vec<_>>()),
            ).unwrap();
            let mut got: BTreeMap<u8, u64> = BTreeMap::new();
            for task in out.outputs {
                for (k, v) in task {
                    prop_assert!(got.insert(k, v).is_none());
                }
            }
            prop_assert_eq!(got, expected);
        }
    }
}
