//! NameNode namespace accounting.
//!
//! HDFS keeps every directory, file, and block descriptor in the NameNode's
//! heap — roughly 150 bytes each (the paper cites the Cloudera small-files
//! article for this figure). The paper's §2.2 argument against
//! multidimensional Hive *partitioning* is exactly this pressure: three
//! partition dimensions with 100 distinct values each create 10^6
//! directories ≈ 143 MB of NameNode memory. This module reproduces that
//! arithmetic so the partitioning experiment reports real numbers.

use std::collections::BTreeMap;

/// Heap bytes charged per namespace object (directory, file, or block).
pub const BYTES_PER_OBJECT: u64 = 150;

/// Metadata for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Length in bytes.
    pub len: u64,
    /// Number of blocks (`ceil(len / block_size)`, 0 for empty files).
    pub blocks: u64,
}

/// In-memory namespace of the simulated cluster.
#[derive(Debug, Default)]
pub struct NameNode {
    dirs: BTreeMap<String, ()>,
    files: BTreeMap<String, FileMeta>,
}

impl NameNode {
    /// A fresh namespace containing only the root directory `/`.
    pub fn new() -> Self {
        let mut nn = NameNode::default();
        nn.dirs.insert("/".to_owned(), ());
        nn
    }

    /// Register a directory and all missing ancestors.
    pub fn mkdirs(&mut self, path: &str) {
        for p in ancestors_inclusive(path) {
            self.dirs.insert(p, ());
        }
    }

    /// Register (or replace) a file's metadata, creating parent dirs.
    pub fn put_file(&mut self, path: &str, meta: FileMeta) {
        if let Some(parent) = parent_of(path) {
            self.mkdirs(&parent);
        }
        self.files.insert(path.to_owned(), meta);
    }

    /// Remove a file. Returns its metadata if it existed.
    pub fn remove_file(&mut self, path: &str) -> Option<FileMeta> {
        self.files.remove(path)
    }

    /// Remove a directory and everything under it.
    pub fn remove_tree(&mut self, path: &str) {
        let prefix = format!("{}/", path.trim_end_matches('/'));
        self.dirs.retain(|d, _| d != path && !d.starts_with(&prefix));
        self.files.retain(|f, _| f != path && !f.starts_with(&prefix));
    }

    /// Look up a file.
    pub fn file(&self, path: &str) -> Option<&FileMeta> {
        self.files.get(path)
    }

    /// Whether `path` is a registered directory.
    pub fn is_dir(&self, path: &str) -> bool {
        self.dirs.contains_key(path)
    }

    /// All files under `dir` (recursive), in path order.
    pub fn files_under(&self, dir: &str) -> Vec<(String, FileMeta)> {
        let prefix = if dir == "/" {
            "/".to_owned()
        } else {
            format!("{}/", dir.trim_end_matches('/'))
        };
        self.files
            .range(prefix.clone()..)
            .take_while(|(p, _)| p.starts_with(&prefix))
            .map(|(p, m)| (p.clone(), m.clone()))
            .collect()
    }

    /// Count of directory objects.
    pub fn dir_count(&self) -> u64 {
        self.dirs.len() as u64
    }

    /// Count of file objects.
    pub fn file_count(&self) -> u64 {
        self.files.len() as u64
    }

    /// Count of block objects across all files.
    pub fn block_count(&self) -> u64 {
        self.files.values().map(|m| m.blocks).sum()
    }

    /// Estimated NameNode heap consumption for the current namespace.
    pub fn memory_bytes(&self) -> u64 {
        (self.dir_count() + self.file_count() + self.block_count()) * BYTES_PER_OBJECT
    }
}

/// Parent path of `path`, or `None` for `/`.
pub fn parent_of(path: &str) -> Option<String> {
    let trimmed = path.trim_end_matches('/');
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.rfind('/') {
        Some(0) => Some("/".to_owned()),
        Some(i) => Some(trimmed[..i].to_owned()),
        None => None,
    }
}

fn ancestors_inclusive(path: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = path.trim_end_matches('/').to_owned();
    if cur.is_empty() {
        cur = "/".to_owned();
    }
    loop {
        out.push(cur.clone());
        match parent_of(&cur) {
            Some(p) => cur = p,
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkdirs_creates_ancestors() {
        let mut nn = NameNode::new();
        nn.mkdirs("/warehouse/meterdata/day=1");
        assert!(nn.is_dir("/"));
        assert!(nn.is_dir("/warehouse"));
        assert!(nn.is_dir("/warehouse/meterdata"));
        assert!(nn.is_dir("/warehouse/meterdata/day=1"));
        assert_eq!(nn.dir_count(), 4);
    }

    #[test]
    fn file_accounting() {
        let mut nn = NameNode::new();
        nn.put_file("/a/f1", FileMeta { len: 130, blocks: 3 });
        nn.put_file("/a/f2", FileMeta { len: 0, blocks: 0 });
        assert_eq!(nn.file_count(), 2);
        assert_eq!(nn.block_count(), 3);
        // dirs: "/", "/a" → 2; files 2; blocks 3 → 7 objects.
        assert_eq!(nn.memory_bytes(), 7 * BYTES_PER_OBJECT);
        assert_eq!(nn.file("/a/f1").unwrap().len, 130);
    }

    #[test]
    fn paper_partition_pressure_example() {
        // §2.2: 3 dimensions × 100 distinct values = 1M directories
        // ≈ 143 MB. We verify the arithmetic at 10×10×10 scale.
        let mut nn = NameNode::new();
        for a in 0..10 {
            for b in 0..10 {
                for c in 0..10 {
                    nn.mkdirs(&format!("/t/a={a}/b={b}/c={c}"));
                }
            }
        }
        // leaf dirs: 1000, plus 100 (a,b), 10 (a), /t, / .
        assert_eq!(nn.dir_count(), 1000 + 100 + 10 + 1 + 1);
    }

    #[test]
    fn files_under_lists_recursively() {
        let mut nn = NameNode::new();
        nn.put_file("/t/p1/f1", FileMeta { len: 1, blocks: 1 });
        nn.put_file("/t/p2/f2", FileMeta { len: 2, blocks: 1 });
        nn.put_file("/u/f3", FileMeta { len: 3, blocks: 1 });
        let got: Vec<String> = nn.files_under("/t").into_iter().map(|(p, _)| p).collect();
        assert_eq!(got, vec!["/t/p1/f1".to_owned(), "/t/p2/f2".to_owned()]);
        assert_eq!(nn.files_under("/").len(), 3);
    }

    #[test]
    fn remove_tree_drops_subtree_only() {
        let mut nn = NameNode::new();
        nn.put_file("/t/p1/f1", FileMeta { len: 1, blocks: 1 });
        nn.put_file("/tx/f2", FileMeta { len: 2, blocks: 1 });
        nn.remove_tree("/t");
        assert!(nn.file("/t/p1/f1").is_none());
        assert!(nn.file("/tx/f2").is_some());
        assert!(!nn.is_dir("/t"));
        assert!(nn.is_dir("/tx"));
    }

    #[test]
    fn parent_of_edges() {
        assert_eq!(parent_of("/a/b"), Some("/a".to_owned()));
        assert_eq!(parent_of("/a"), Some("/".to_owned()));
        assert_eq!(parent_of("/"), None);
    }
}
