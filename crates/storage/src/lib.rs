//! # dgf-storage
//!
//! The storage substrate: a single-process simulation of HDFS.
//!
//! * [`SimHdfs`] — real local files behind an HDFS-style namespace, with
//!   write-once `create`, positioned readers, and shared I/O counters.
//! * [`NameNode`] — namespace accounting (150 B per dir/file/block object),
//!   reproducing the paper's argument about partition-directory pressure.
//! * [`FileSplit`] — block-granularity MapReduce input splits.
//!
//! The paper's index techniques differ precisely in *which byte ranges of
//! which splits they read*; this crate is where those reads become
//! observable (see [`dgf_common::stats::IoStats`]).

#![warn(missing_docs)]

pub mod hdfs;
pub mod namenode;
pub mod prefetch;
pub mod split;

pub use hdfs::{HdfsConfig, HdfsReader, HdfsRef, HdfsWriter, SimHdfs, DEFAULT_BLOCK_SIZE};
pub use prefetch::{FramePrefetcher, PREFETCH_DEPTH};
pub use namenode::{FileMeta, NameNode, BYTES_PER_OBJECT};
pub use split::{splits_for_file, FileSplit};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Splits partition the file: contiguous, disjoint, covering.
        #[test]
        fn splits_partition_file(len in 0u64..10_000, block in 1u64..512) {
            let splits = splits_for_file("/f", len, block);
            let mut expected_start = 0u64;
            for s in &splits {
                prop_assert_eq!(s.start, expected_start);
                prop_assert!(s.len > 0 && s.len <= block);
                expected_start = s.end();
            }
            prop_assert_eq!(expected_start, len);
        }

        /// Every split except possibly the last is exactly one block.
        #[test]
        fn only_last_split_is_partial(len in 1u64..10_000, block in 1u64..512) {
            let splits = splits_for_file("/f", len, block);
            for s in &splits[..splits.len() - 1] {
                prop_assert_eq!(s.len, block);
            }
        }
    }
}
