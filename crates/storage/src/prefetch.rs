//! Double-buffered frame prefetch: overlap file I/O with decode.
//!
//! The RCFile read path is a strict fetch → decode → aggregate loop per row
//! group; on a cold scan the CPU idles during every fetch. A
//! [`FramePrefetcher`] moves the fetches onto a background thread that stays
//! one group ahead of the consumer (bounded by [`PREFETCH_DEPTH`] in-flight
//! frames, i.e. a double buffer): the consumer decodes group *N* while the
//! thread reads group *N+1* from `SimHdfs` (DESIGN.md §12).
//!
//! The prefetcher is handed the exact offsets the reader would fetch, after
//! group pruning — it never reads a byte a sequential scan would not, so
//! I/O accounting (`IoStats::bytes_read`, fault injection, retry counting)
//! is unchanged; only the timing moves. Dropping the prefetcher joins the
//! thread, so all I/O is charged before a query's stats snapshot is taken.

use std::io::{Read, Seek, SeekFrom};
use std::sync::mpsc::{sync_channel, Receiver, TryRecvError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dgf_common::{DgfError, Result};

use crate::hdfs::HdfsRef;

/// Frames the background thread keeps in flight ahead of the consumer.
///
/// Depth 2 is a classic double buffer: one frame being decoded, one being
/// fetched, one queued — enough to hide fetch latency without holding many
/// groups in memory.
pub const PREFETCH_DEPTH: usize = 2;

/// One prefetched frame: the group's file offset and its payload bytes
/// (the length prefix already consumed).
pub type Frame = (u64, Vec<u8>);

/// Background reader of length-prefixed frames at known offsets.
///
/// Frames are delivered in the order the offsets were given, which is the
/// order a sequential reader would fetch them — consumers observe the same
/// byte stream, just earlier.
pub struct FramePrefetcher {
    rx: Receiver<Result<Frame>>,
    handle: Option<JoinHandle<()>>,
    waits: u64,
    wait_time: Duration,
}

impl FramePrefetcher {
    /// Spawn a prefetch thread reading a `u32` length prefix + payload at
    /// each of `offsets` in `path`, in order.
    pub fn spawn(hdfs: &HdfsRef, path: &str, offsets: Vec<u64>) -> Result<FramePrefetcher> {
        let mut reader = hdfs.open_reader(path)?;
        let path = path.to_string();
        let (tx, rx) = sync_channel::<Result<Frame>>(PREFETCH_DEPTH);
        let handle = std::thread::spawn(move || {
            for offset in offsets {
                let frame = read_frame(&mut reader, &path, offset);
                let failed = frame.is_err();
                // A send error means the consumer hung up; stop fetching.
                if tx.send(frame).is_err() || failed {
                    return;
                }
            }
        });
        Ok(FramePrefetcher {
            rx,
            handle: Some(handle),
            waits: 0,
            wait_time: Duration::ZERO,
        })
    }

    /// The next frame, or `None` when every offset has been delivered.
    ///
    /// Blocks if the background thread has not fetched the frame yet; the
    /// blocked time is recorded and reported by [`Self::wait_stats`].
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        match self.rx.try_recv() {
            Ok(frame) => frame.map(Some),
            Err(TryRecvError::Disconnected) => Ok(None),
            Err(TryRecvError::Empty) => {
                let start = Instant::now();
                let got = self.rx.recv();
                self.waits += 1;
                self.wait_time += start.elapsed();
                match got {
                    Ok(frame) => frame.map(Some),
                    Err(_) => Ok(None),
                }
            }
        }
    }

    /// How often and for how long [`Self::next_frame`] blocked on the thread.
    pub fn wait_stats(&self) -> (u64, Duration) {
        (self.waits, self.wait_time)
    }
}

impl Drop for FramePrefetcher {
    fn drop(&mut self) {
        // Unblock the thread (its sends start failing), then join it so no
        // I/O is still in flight after the prefetcher is gone.
        let (dead_tx, dead_rx) = sync_channel(0);
        let _ = std::mem::replace(&mut self.rx, dead_rx);
        drop(dead_tx);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Read one `u32`-length-prefixed frame at `offset`.
fn read_frame(reader: &mut crate::hdfs::HdfsReader, path: &str, offset: u64) -> Result<Frame> {
    reader.seek(SeekFrom::Start(offset))?;
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let n = u32::from_le_bytes(len_buf) as usize;
    if offset + 4 + n as u64 > reader.len() {
        return Err(DgfError::Corrupt(format!(
            "{path}: frame at {offset} overruns the file"
        )));
    }
    let mut payload = vec![0u8; n];
    reader.read_exact(&mut payload)?;
    Ok((offset, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdfs::{HdfsConfig, SimHdfs};
    use dgf_common::TempDir;
    use std::io::Write as _;

    fn cluster() -> (TempDir, HdfsRef) {
        let t = TempDir::new("prefetch").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 1024,
                replication: 1,
            },
        )
        .unwrap();
        (t, h)
    }

    fn write_frames(h: &HdfsRef, path: &str, payloads: &[&[u8]]) -> Vec<u64> {
        let mut w = h.create(path).unwrap();
        let mut offsets = Vec::new();
        for p in payloads {
            offsets.push(w.position());
            w.write_all(&(p.len() as u32).to_le_bytes()).unwrap();
            w.write_all(p).unwrap();
        }
        w.close().unwrap();
        offsets
    }

    #[test]
    fn frames_arrive_in_offset_order() {
        let (_t, h) = cluster();
        let offs = write_frames(&h, "/p/f", &[b"alpha", b"bee", b"c"]);
        let mut p = FramePrefetcher::spawn(&h, "/p/f", offs.clone()).unwrap();
        assert_eq!(p.next_frame().unwrap(), Some((offs[0], b"alpha".to_vec())));
        assert_eq!(p.next_frame().unwrap(), Some((offs[1], b"bee".to_vec())));
        assert_eq!(p.next_frame().unwrap(), Some((offs[2], b"c".to_vec())));
        assert_eq!(p.next_frame().unwrap(), None);
        assert_eq!(p.next_frame().unwrap(), None);
    }

    #[test]
    fn skipped_offsets_are_never_fetched() {
        let (_t, h) = cluster();
        let offs = write_frames(&h, "/p/f", &[b"aaaaaaaaaa", b"bbbbbbbbbb", b"cccccccccc"]);
        let before = h.stats().bytes_read.get();
        let mut p = FramePrefetcher::spawn(&h, "/p/f", vec![offs[1]]).unwrap();
        assert_eq!(p.next_frame().unwrap(), Some((offs[1], b"bbbbbbbbbb".to_vec())));
        assert_eq!(p.next_frame().unwrap(), None);
        drop(p);
        let read = h.stats().bytes_read.get() - before;
        assert_eq!(read, 14, "exactly one frame (4-byte prefix + 10 bytes)");
    }

    #[test]
    fn drop_midway_joins_cleanly() {
        let (_t, h) = cluster();
        let offs = write_frames(&h, "/p/f", &[b"one", b"two", b"three", b"four", b"five"]);
        let mut p = FramePrefetcher::spawn(&h, "/p/f", offs).unwrap();
        let _ = p.next_frame().unwrap();
        drop(p); // must not hang or panic with frames still queued
    }

    #[test]
    fn corrupt_frame_surfaces_as_error() {
        let (_t, h) = cluster();
        let mut w = h.create("/p/bad").unwrap();
        w.write_all(&1000u32.to_le_bytes()).unwrap(); // length overruns file
        w.write_all(b"short").unwrap();
        w.close().unwrap();
        let mut p = FramePrefetcher::spawn(&h, "/p/bad", vec![0]).unwrap();
        assert!(p.next_frame().is_err());
    }

    #[test]
    fn wait_stats_count_blocking() {
        let (_t, h) = cluster();
        let offs = write_frames(&h, "/p/f", &[b"x"]);
        let mut p = FramePrefetcher::spawn(&h, "/p/f", offs).unwrap();
        while p.next_frame().unwrap().is_some() {}
        let (waits, time) = p.wait_stats();
        // Whether the consumer blocked is timing-dependent; the invariant
        // is just that the accounting is self-consistent.
        assert!(waits > 0 || time == Duration::ZERO);
    }
}
