//! `SimHdfs`: a single-process stand-in for HDFS.
//!
//! Files are real files on the local file system, so reads and writes in
//! benchmarks do real I/O. What is simulated is the *cluster metadata*: an
//! HDFS-style namespace with a [`NameNode`] accounting for directories,
//! files, and blocks, and block-granularity split enumeration for MapReduce
//! input. Every reader and writer charges a shared [`IoStats`] block, which
//! is how the paper's "records read" tables are measured.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use dgf_common::fault::{io_error_is_transient, FaultPlan, RetryPolicy};
use dgf_common::stats::{IoSnapshot, IoStats, IoStatsRef};
use dgf_common::{DgfError, Result};

use crate::namenode::{parent_of, FileMeta, NameNode};
use crate::split::{splits_for_file, FileSplit};

/// Default block size. The paper uses 64 MB; the default here is scaled down
/// so laptop-sized datasets still produce multi-split tables.
pub const DEFAULT_BLOCK_SIZE: u64 = 4 * 1024 * 1024;

/// Configuration for a simulated cluster.
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    /// Block size in bytes; also the default split size.
    pub block_size: u64,
    /// Replication factor. Only affects reported storage cost, not layout.
    pub replication: u32,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            replication: 2, // the paper's cluster setting
        }
    }
}

/// Chaos-mode wiring: a fault schedule plus the retry policy that
/// readers and writers use to absorb its transient faults internally
/// (the fault decision is drawn *before* any bytes move, so a retry is
/// always idempotent).
#[derive(Debug, Clone)]
struct FaultCtx {
    plan: Arc<FaultPlan>,
    retry: RetryPolicy,
}

/// A simulated HDFS instance rooted at a local directory.
#[derive(Debug)]
pub struct SimHdfs {
    root: PathBuf,
    config: HdfsConfig,
    namenode: Mutex<NameNode>,
    stats: IoStatsRef,
    fault: Mutex<Option<FaultCtx>>,
}

/// Shared handle to a [`SimHdfs`].
pub type HdfsRef = Arc<SimHdfs>;

impl SimHdfs {
    /// Create a cluster rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>, config: HdfsConfig) -> Result<HdfsRef> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Arc::new(SimHdfs {
            root,
            config,
            namenode: Mutex::new(NameNode::new()),
            stats: Arc::new(IoStats::default()),
            fault: Mutex::new(None),
        }))
    }

    /// Create a cluster with default configuration.
    pub fn open(root: impl Into<PathBuf>) -> Result<HdfsRef> {
        SimHdfs::new(root, HdfsConfig::default())
    }

    /// Reopen a cluster whose files already exist under `root`: the
    /// NameNode recovers its namespace by walking the directory tree
    /// (the equivalent of loading the fsimage after a restart).
    pub fn reopen(root: impl Into<PathBuf>, config: HdfsConfig) -> Result<HdfsRef> {
        let hdfs = SimHdfs::new(root, config)?;
        fn walk(hdfs: &SimHdfs, local: &std::path::Path, hpath: &str) -> Result<()> {
            for entry in std::fs::read_dir(local)? {
                let entry = entry?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with('.') {
                    // Hidden entries are not part of the namespace (the
                    // CLI keeps key-value store logs in a dot-directory),
                    // mirroring Hadoop's treatment of hidden files.
                    continue;
                }
                let child = if hpath == "/" {
                    format!("/{name}")
                } else {
                    format!("{hpath}/{name}")
                };
                let meta = entry.metadata()?;
                if meta.is_dir() {
                    hdfs.namenode.lock().mkdirs(&child);
                    walk(hdfs, &entry.path(), &child)?;
                } else {
                    hdfs.finish_file(&child, meta.len());
                }
            }
            Ok(())
        }
        let root = hdfs.root.clone();
        walk(&hdfs, &root, "/")?;
        Ok(hdfs)
    }

    /// The local directory backing this cluster.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// The configured block size.
    pub fn block_size(&self) -> u64 {
        self.config.block_size
    }

    /// The shared I/O counters charged by all readers and writers.
    pub fn stats(&self) -> &IoStatsRef {
        &self.stats
    }

    /// Attach the I/O performed since `since` to `span` under the
    /// `hdfs.*` metric names — the storage layer's contribution to a
    /// [`QueryProfile`](dgf_common::obs::QueryProfile) stage.
    pub fn attach_io_to_span(&self, span: &dgf_common::obs::SpanGuard, since: &IoSnapshot) {
        let delta = self.stats.snapshot().since(since);
        dgf_common::obs::span_add_io_snapshot(span, &delta);
    }

    /// Project the I/O performed since `since` into `reg` under the
    /// `hdfs.*` metric names.
    pub fn record_io_into(&self, reg: &dgf_common::obs::MetricsRegistry, since: &IoSnapshot) {
        let delta = self.stats.snapshot().since(since);
        dgf_common::obs::record_io_snapshot(reg, &delta);
    }

    /// Enable chaos mode: every subsequent `create`/`open_reader` and
    /// every read/write of the handles they return consults `plan`.
    /// Transient faults are absorbed internally under `retry` (counted in
    /// [`IoStats::retries`]); crashes at writer close produce torn,
    /// unregistered files, like an HDFS client dying before the block
    /// report.
    pub fn enable_faults(&self, plan: Arc<FaultPlan>, retry: RetryPolicy) {
        *self.fault.lock() = Some(FaultCtx { plan, retry });
    }

    /// Disable chaos mode (already-open readers/writers keep the plan
    /// they captured).
    pub fn disable_faults(&self) {
        *self.fault.lock() = None;
    }

    fn fault_ctx(&self) -> Option<FaultCtx> {
        self.fault.lock().clone()
    }

    /// Consult the fault plan (if any) for a metadata-level operation,
    /// retrying transient faults into `stats.retries`.
    fn fault_check(&self, what: &str, is_write: bool) -> Result<()> {
        let Some(ctx) = self.fault_ctx() else {
            return Ok(());
        };
        let mut attempt = 1u32;
        loop {
            let res = if is_write {
                ctx.plan.before_write(what)
            } else {
                ctx.plan.before_read(what)
            };
            match res {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < ctx.retry.max_attempts => {
                    self.stats.retries.inc();
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Estimated NameNode heap usage for the current namespace.
    pub fn namenode_memory_bytes(&self) -> u64 {
        self.namenode.lock().memory_bytes()
    }

    /// Namespace object counts `(dirs, files, blocks)`.
    pub fn namenode_objects(&self) -> (u64, u64, u64) {
        let nn = self.namenode.lock();
        (nn.dir_count(), nn.file_count(), nn.block_count())
    }

    fn localize(&self, path: &str) -> Result<PathBuf> {
        let rel = path
            .strip_prefix('/')
            .ok_or_else(|| DgfError::Io(io::Error::other(format!("path {path:?} not absolute"))))?;
        if rel.split('/').any(|c| c == "..") {
            return Err(DgfError::Io(io::Error::other(format!(
                "path {path:?} escapes the namespace"
            ))));
        }
        Ok(self.root.join(rel))
    }

    /// Create a directory (and ancestors).
    pub fn mkdirs(&self, path: &str) -> Result<()> {
        std::fs::create_dir_all(self.localize(path)?)?;
        self.namenode.lock().mkdirs(path);
        Ok(())
    }

    /// Whether a file exists at `path`.
    pub fn file_exists(&self, path: &str) -> bool {
        self.namenode.lock().file(path).is_some()
    }

    /// Whether a directory exists at `path`.
    pub fn dir_exists(&self, path: &str) -> bool {
        self.namenode.lock().is_dir(path)
    }

    /// Length of the file at `path`.
    pub fn file_len(&self, path: &str) -> Result<u64> {
        self.namenode
            .lock()
            .file(path)
            .map(|m| m.len)
            .ok_or_else(|| DgfError::Io(io::Error::new(io::ErrorKind::NotFound, path.to_owned())))
    }

    /// All files under `dir`, recursively, as `(path, len)` in path order.
    pub fn list_files(&self, dir: &str) -> Vec<(String, u64)> {
        self.namenode
            .lock()
            .files_under(dir)
            .into_iter()
            .map(|(p, m)| (p, m.len))
            .collect()
    }

    /// Create a new file for writing. Fails if the file already exists —
    /// HDFS files are write-once, which is exactly the meter-data contract
    /// the paper relies on (feature ii in §1).
    pub fn create(self: &Arc<Self>, path: &str) -> Result<HdfsWriter> {
        self.fault_check("hdfs.create", true)?;
        if self.file_exists(path) {
            return Err(DgfError::Io(io::Error::new(
                io::ErrorKind::AlreadyExists,
                path.to_owned(),
            )));
        }
        if let Some(parent) = parent_of(path) {
            self.mkdirs(&parent)?;
        }
        let local = self.localize(path)?;
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(local)?;
        Ok(HdfsWriter {
            inner: Some(BufWriter::new(file)),
            hdfs: Arc::clone(self),
            path: path.to_owned(),
            written: 0,
            fault: self.fault_ctx(),
        })
    }

    /// Open a file for positioned reading.
    pub fn open_reader(&self, path: &str) -> Result<HdfsReader> {
        self.fault_check("hdfs.open_reader", false)?;
        let len = self.file_len(path)?;
        let file = File::open(self.localize(path)?)?;
        Ok(HdfsReader {
            file,
            len,
            stats: Arc::clone(&self.stats),
            fault: self.fault_ctx(),
        })
    }

    /// Read a whole (small) file into memory, charging its bytes to
    /// [`IoStats`] like any other read. Used for
    /// slice sidecar indexes, whose planner-side consumers want the full
    /// checksummed payload in one call.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        let mut r = self.open_reader(path)?;
        let mut buf = Vec::new();
        io::Read::read_to_end(&mut r, &mut buf)?;
        Ok(buf)
    }

    /// Atomically move a file to a new path. Fails if `from` is missing
    /// or `to` already exists; parents of `to` are created. This is the
    /// publish step of the staging→commit protocol (HDFS renames are
    /// atomic NameNode operations).
    pub fn rename_file(&self, from: &str, to: &str) -> Result<()> {
        self.fault_check("hdfs.rename", true)?;
        let meta = self
            .namenode
            .lock()
            .file(from)
            .cloned()
            .ok_or_else(|| DgfError::Io(io::Error::new(io::ErrorKind::NotFound, from.to_owned())))?;
        if self.file_exists(to) {
            return Err(DgfError::Io(io::Error::new(
                io::ErrorKind::AlreadyExists,
                to.to_owned(),
            )));
        }
        if let Some(parent) = parent_of(to) {
            self.mkdirs(&parent)?;
        }
        std::fs::rename(self.localize(from)?, self.localize(to)?)?;
        let mut nn = self.namenode.lock();
        nn.remove_file(from);
        nn.put_file(to, meta);
        Ok(())
    }

    /// Delete one file.
    pub fn delete_file(&self, path: &str) -> Result<()> {
        if self.namenode.lock().remove_file(path).is_some() {
            std::fs::remove_file(self.localize(path)?)?;
        }
        Ok(())
    }

    /// Delete a directory tree.
    pub fn delete_tree(&self, path: &str) -> Result<()> {
        self.namenode.lock().remove_tree(path);
        let local = self.localize(path)?;
        if local.exists() {
            std::fs::remove_dir_all(local)?;
        }
        Ok(())
    }

    /// Enumerate block-aligned input splits for every file under `dir`.
    pub fn splits_for_dir(&self, dir: &str) -> Vec<FileSplit> {
        self.splits_for_dir_sized(dir, self.config.block_size)
    }

    /// Enumerate input splits of at most `split_size` bytes.
    pub fn splits_for_dir_sized(&self, dir: &str, split_size: u64) -> Vec<FileSplit> {
        let mut out = Vec::new();
        for (path, len) in self.list_files(dir) {
            out.extend(splits_for_file(&path, len, split_size));
        }
        out
    }

    /// Total bytes stored under `dir` (logical, before replication).
    pub fn dir_size(&self, dir: &str) -> u64 {
        self.list_files(dir).iter().map(|(_, l)| *l).sum()
    }

    fn finish_file(&self, path: &str, len: u64) {
        let blocks = len.div_ceil(self.config.block_size);
        self.namenode
            .lock()
            .put_file(path, FileMeta { len, blocks });
    }
}

/// Buffered writer charging [`IoStats`] and registering the file with the
/// NameNode on [`close`](HdfsWriter::close).
#[derive(Debug)]
pub struct HdfsWriter {
    inner: Option<BufWriter<File>>,
    hdfs: HdfsRef,
    path: String,
    written: u64,
    fault: Option<FaultCtx>,
}

impl HdfsWriter {
    /// Bytes written so far.
    pub fn position(&self) -> u64 {
        self.written
    }

    /// The file's HDFS path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Flush, register with the NameNode, and return the final length.
    pub fn close(mut self) -> Result<u64> {
        self.close_inner()?;
        Ok(self.written)
    }

    fn close_inner(&mut self) -> Result<()> {
        let Some(mut w) = self.inner.take() else {
            return Ok(());
        };
        // Crash point before close: the client dies with data in flight.
        // The file is torn at a schedule-chosen offset and never reaches
        // the NameNode — exactly the partial-write state HDFS leaves when
        // a writer crashes before its final block report.
        if let Some(ctx) = &self.fault {
            if let Err(e) = ctx.plan.crash_point("hdfs.writer.close") {
                let _ = w.flush();
                drop(w);
                let keep = ctx.plan.draw_below(self.written + 1);
                if let Ok(local) = self.hdfs.localize(&self.path) {
                    if let Ok(f) = OpenOptions::new().write(true).open(local) {
                        let _ = f.set_len(keep);
                    }
                }
                return Err(e);
            }
        }
        w.flush()?;
        self.hdfs.finish_file(&self.path, self.written);
        // Crash point after close: the file is durable and registered,
        // but the caller never learns the close succeeded.
        if let Some(ctx) = &self.fault {
            ctx.plan.crash_point("hdfs.writer.close.ack")?;
        }
        Ok(())
    }

    /// Consult the fault plan before moving bytes; absorbs transient
    /// faults internally (idempotent — nothing was transferred yet).
    fn fault_check_io(fault: &Option<FaultCtx>, stats: &IoStats, what: &str) -> io::Result<()> {
        let Some(ctx) = fault else {
            return Ok(());
        };
        let mut attempt = 1u32;
        loop {
            match ctx.plan.before_write_io(what) {
                Ok(()) => return Ok(()),
                Err(e) if io_error_is_transient(&e) && attempt < ctx.retry.max_attempts => {
                    stats.retries.inc();
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Write for HdfsWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        HdfsWriter::fault_check_io(&self.fault, &self.hdfs.stats, "hdfs.write")?;
        let w = self
            .inner
            .as_mut()
            .ok_or_else(|| io::Error::other("writer already closed"))?;
        let n = w.write(buf)?;
        self.written += n as u64;
        self.hdfs.stats.bytes_written.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.inner.as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }
}

impl Drop for HdfsWriter {
    fn drop(&mut self) {
        // Best effort: an explicitly closed writer is a no-op here.
        let _ = self.close_inner();
    }
}

/// Positioned reader charging [`IoStats`].
#[derive(Debug)]
pub struct HdfsReader {
    file: File,
    len: u64,
    stats: IoStatsRef,
    fault: Option<FaultCtx>,
}

impl HdfsReader {
    /// File length at open time.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Read for HdfsReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Draw the fault before the transfer so a retry re-reads nothing.
        if let Some(ctx) = &self.fault {
            let mut attempt = 1u32;
            loop {
                match ctx.plan.before_read_io("hdfs.read") {
                    Ok(()) => break,
                    Err(e) if io_error_is_transient(&e) && attempt < ctx.retry.max_attempts => {
                        self.stats.retries.inc();
                        attempt += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        let n = self.file.read(buf)?;
        self.stats.bytes_read.add(n as u64);
        Ok(n)
    }
}

impl Seek for HdfsReader {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.stats.seeks.inc();
        self.file.seek(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::TempDir;
    use std::io::BufReader;

    fn cluster() -> (TempDir, HdfsRef) {
        let t = TempDir::new("hdfs").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 64,
                replication: 2,
            },
        )
        .unwrap();
        (t, h)
    }

    #[test]
    fn write_then_read_round_trip() {
        let (_t, h) = cluster();
        let mut w = h.create("/data/f1").unwrap();
        w.write_all(b"hello hdfs").unwrap();
        let len = w.close().unwrap();
        assert_eq!(len, 10);
        assert_eq!(h.file_len("/data/f1").unwrap(), 10);

        let mut r = h.open_reader("/data/f1").unwrap();
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, "hello hdfs");
        assert_eq!(h.stats().bytes_read.get(), 10);
        assert_eq!(h.stats().bytes_written.get(), 10);
    }

    #[test]
    fn create_is_write_once() {
        let (_t, h) = cluster();
        h.create("/f").unwrap().close().unwrap();
        assert!(h.create("/f").is_err());
    }

    #[test]
    fn splits_follow_block_size() {
        let (_t, h) = cluster();
        let mut w = h.create("/tab/part-0").unwrap();
        w.write_all(&[b'x'; 150]).unwrap();
        w.close().unwrap();
        let mut w = h.create("/tab/part-1").unwrap();
        w.write_all(&[b'y'; 64]).unwrap();
        w.close().unwrap();

        let splits = h.splits_for_dir("/tab");
        assert_eq!(splits.len(), 4); // 64+64+22, 64
        assert_eq!(splits[0], FileSplit::new("/tab/part-0", 0, 64));
        assert_eq!(splits[2], FileSplit::new("/tab/part-0", 128, 22));
        assert_eq!(splits[3], FileSplit::new("/tab/part-1", 0, 64));
        assert_eq!(h.dir_size("/tab"), 214);
    }

    #[test]
    fn namenode_tracks_blocks() {
        let (_t, h) = cluster();
        let mut w = h.create("/a/f").unwrap();
        w.write_all(&[0u8; 130]).unwrap();
        w.close().unwrap();
        let (dirs, files, blocks) = h.namenode_objects();
        assert_eq!(files, 1);
        assert_eq!(blocks, 3); // ceil(130/64)
        assert!(dirs >= 2); // "/" and "/a"
        assert_eq!(
            h.namenode_memory_bytes(),
            (dirs + files + blocks) * crate::namenode::BYTES_PER_OBJECT
        );
    }

    #[test]
    fn seek_and_positioned_read() {
        let (_t, h) = cluster();
        let mut w = h.create("/f").unwrap();
        w.write_all(b"0123456789").unwrap();
        w.close().unwrap();

        let mut r = h.open_reader("/f").unwrap();
        r.seek(SeekFrom::Start(4)).unwrap();
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"456");
        assert_eq!(h.stats().seeks.get(), 1);
    }

    #[test]
    fn delete_file_and_tree() {
        let (_t, h) = cluster();
        h.create("/t/a").unwrap().close().unwrap();
        h.create("/t/b").unwrap().close().unwrap();
        h.delete_file("/t/a").unwrap();
        assert!(!h.file_exists("/t/a"));
        assert!(h.file_exists("/t/b"));
        h.delete_tree("/t").unwrap();
        assert!(!h.file_exists("/t/b"));
        assert!(h.open_reader("/t/b").is_err());
    }

    #[test]
    fn dropped_writer_still_registers() {
        let (_t, h) = cluster();
        {
            let mut w = h.create("/f").unwrap();
            w.write_all(b"abc").unwrap();
            // dropped without close()
        }
        assert_eq!(h.file_len("/f").unwrap(), 3);
    }

    #[test]
    fn path_validation() {
        let (_t, h) = cluster();
        assert!(h.mkdirs("relative").is_err());
        assert!(h.mkdirs("/ok/../escape").is_err());
    }

    #[test]
    fn reopen_recovers_the_namespace() {
        let t = TempDir::new("hdfs-reopen").unwrap();
        {
            let h = SimHdfs::new(
                t.path(),
                HdfsConfig {
                    block_size: 64,
                    replication: 1,
                },
            )
            .unwrap();
            let mut w = h.create("/tab/part-0").unwrap();
            w.write_all(&[b'x'; 100]).unwrap();
            w.close().unwrap();
            h.create("/tab/sub/part-1").unwrap().close().unwrap();
        }
        // "Restart": a fresh instance over the same root.
        let h = SimHdfs::reopen(
            t.path(),
            HdfsConfig {
                block_size: 64,
                replication: 1,
            },
        )
        .unwrap();
        assert_eq!(h.file_len("/tab/part-0").unwrap(), 100);
        assert!(h.file_exists("/tab/sub/part-1"));
        assert!(h.dir_exists("/tab/sub"));
        assert_eq!(h.splits_for_dir("/tab").len(), 2); // 64+36 bytes
        let mut r = h.open_reader("/tab/part-0").unwrap();
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf.len(), 100);
    }

    #[test]
    fn rename_file_moves_data_and_metadata() {
        let (_t, h) = cluster();
        let mut w = h.create("/stage/f").unwrap();
        w.write_all(b"payload").unwrap();
        w.close().unwrap();

        h.rename_file("/stage/f", "/live/f").unwrap();
        assert!(!h.file_exists("/stage/f"));
        assert_eq!(h.file_len("/live/f").unwrap(), 7);
        let mut r = h.open_reader("/live/f").unwrap();
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, "payload");

        // Missing source and occupied destination are both errors.
        assert!(h.rename_file("/stage/f", "/live/g").is_err());
        h.create("/live/g").unwrap().close().unwrap();
        assert!(h.rename_file("/live/f", "/live/g").is_err());
    }

    #[test]
    fn transient_faults_are_absorbed_and_counted() {
        use dgf_common::fault::{FaultConfig, FaultPlan};
        let (_t, h) = cluster();
        let mut w = h.create("/f").unwrap();
        w.write_all(b"0123456789").unwrap();
        w.close().unwrap();

        // Half the draws fault; a generous retry budget absorbs them all.
        h.enable_faults(
            Arc::new(FaultPlan::new(FaultConfig::transient(3, 0.5))),
            RetryPolicy::fast(20),
        );
        let mut r = h.open_reader("/f").unwrap();
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, "0123456789");
        assert!(h.stats().retries.get() > 0, "absorbed retries must be counted");

        // With no retry budget the same fault surfaces as a typed error.
        h.enable_faults(
            Arc::new(FaultPlan::new(FaultConfig::transient(3, 1.0))),
            RetryPolicy::NONE,
        );
        let err = h.open_reader("/f").unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn crash_at_close_leaves_a_torn_unregistered_file() {
        use dgf_common::fault::{FaultConfig, FaultPlan};
        let (_t, h) = cluster();
        h.enable_faults(
            Arc::new(FaultPlan::new(FaultConfig::crash_at(9, 0))),
            RetryPolicy::NONE,
        );
        let mut w = h.create("/f").unwrap();
        w.write_all(b"will be torn").unwrap();
        let err = w.close().unwrap_err();
        assert!(!err.is_transient());
        // Not in the namespace: a reopen-style recovery never sees it.
        assert!(!h.file_exists("/f"));
        // And the local bytes are truncated at or before the full length.
        let local = std::fs::metadata(h.root().join("f")).unwrap();
        assert!(local.len() <= 12);
    }

    #[test]
    fn crash_after_close_registers_but_reports_failure() {
        use dgf_common::fault::{FaultConfig, FaultPlan};
        let (_t, h) = cluster();
        h.enable_faults(
            Arc::new(FaultPlan::new(FaultConfig::crash_at(9, 1))),
            RetryPolicy::NONE,
        );
        let mut w = h.create("/f").unwrap();
        w.write_all(b"acked late").unwrap();
        assert!(w.close().is_err());
        // The close itself completed: data is durable and registered.
        assert_eq!(h.file_len("/f").unwrap(), 10);
    }

    #[test]
    fn buffered_reader_wraps_cleanly() {
        let (_t, h) = cluster();
        let mut w = h.create("/f").unwrap();
        for i in 0..100 {
            writeln!(w, "line {i}").unwrap();
        }
        w.close().unwrap();
        let r = BufReader::new(h.open_reader("/f").unwrap());
        use std::io::BufRead;
        assert_eq!(r.lines().count(), 100);
    }
}
