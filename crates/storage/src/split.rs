//! Input splits: the unit of work handed to a mapper.
//!
//! As in Hadoop, a split is a byte range of one file, normally one HDFS
//! block. Index-based split filtering (Hive Compact Index, DGFIndex stage 2)
//! works at this granularity: a split is either read whole or skipped whole —
//! unless a skipping record reader (DGFIndex stage 3) prunes inside it.

use std::fmt;

/// A contiguous byte range `[start, start+len)` of one file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FileSplit {
    /// HDFS-style path of the file.
    pub path: String,
    /// First byte of the split.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

impl FileSplit {
    /// Construct a split.
    pub fn new(path: impl Into<String>, start: u64, len: u64) -> Self {
        FileSplit {
            path: path.into(),
            start,
            len,
        }
    }

    /// One byte past the end.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether the byte range `[lo, hi)` overlaps this split.
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        lo < self.end() && hi > self.start
    }
}

impl fmt::Display for FileSplit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}+{}", self.path, self.start, self.len)
    }
}

/// Cut a file of length `file_len` into splits of at most `split_size` bytes.
pub fn splits_for_file(path: &str, file_len: u64, split_size: u64) -> Vec<FileSplit> {
    assert!(split_size > 0, "split size must be positive");
    let mut out = Vec::new();
    let mut start = 0;
    while start < file_len {
        let len = split_size.min(file_len - start);
        out.push(FileSplit::new(path, start, len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple() {
        let s = splits_for_file("/f", 128, 64);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], FileSplit::new("/f", 0, 64));
        assert_eq!(s[1], FileSplit::new("/f", 64, 64));
    }

    #[test]
    fn trailing_partial_split() {
        let s = splits_for_file("/f", 100, 64);
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], FileSplit::new("/f", 64, 36));
    }

    #[test]
    fn empty_file_has_no_splits() {
        assert!(splits_for_file("/f", 0, 64).is_empty());
    }

    #[test]
    fn overlap_logic() {
        let s = FileSplit::new("/f", 10, 10); // [10, 20)
        assert!(s.overlaps(0, 11));
        assert!(s.overlaps(19, 25));
        assert!(s.overlaps(12, 13));
        assert!(!s.overlaps(0, 10));
        assert!(!s.overlaps(20, 30));
    }
}
