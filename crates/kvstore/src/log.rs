//! A persistent, log-structured key-value store.
//!
//! Writes append checksummed records to a single log file; the full live
//! key set is kept in an in-memory ordered map (GFU entries are tiny — a
//! few dozen bytes — so even a large grid fits comfortably). On open, the
//! log is replayed; a torn or corrupt tail is truncated rather than
//! poisoning the store. `compact` rewrites the log to contain only live
//! entries.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use dgf_common::codec::fnv1a;
use dgf_common::{DgfError, Result};

use crate::traits::{KvPair, KvStats, KvStore};

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// On-disk record layout:
/// `[u32 payload_len][payload][u64 fnv1a(payload)]` where
/// `payload = op(1) | key_len(u32) | key | value`.
#[derive(Debug)]
struct Inner {
    map: std::collections::BTreeMap<Vec<u8>, Vec<u8>>,
    writer: BufWriter<File>,
    log_len: u64,
}

/// A crash-safe single-file key-value store.
#[derive(Debug)]
pub struct LogKvStore {
    path: PathBuf,
    inner: Mutex<Inner>,
    stats: KvStats,
}

impl LogKvStore {
    /// Open (or create) the store at `path`, replaying any existing log.
    pub fn open(path: impl Into<PathBuf>) -> Result<LogKvStore> {
        let path = path.into();
        let (map, valid_len) = replay(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        // Drop a torn tail so subsequent appends start at a record boundary.
        if file.metadata()?.len() > valid_len {
            file.set_len(valid_len)?;
        }
        Ok(LogKvStore {
            path,
            inner: Mutex::new(Inner {
                map,
                writer: BufWriter::new(file),
                log_len: valid_len,
            }),
            stats: KvStats::default(),
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Physical log length in bytes (grows with every write until
    /// [`compact`](Self::compact)).
    pub fn log_len(&self) -> u64 {
        self.inner.lock().log_len
    }

    /// Rewrite the log to hold only live entries. Returns bytes reclaimed.
    pub fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        let tmp = self.path.with_extension("compact");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for (k, v) in &inner.map {
                write_record(&mut w, OP_PUT, k, v)?;
            }
            w.flush()?;
        }
        let old_len = inner.log_len;
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        let new_len = file.metadata()?.len();
        inner.writer = BufWriter::new(file);
        inner.log_len = new_len;
        Ok(old_len.saturating_sub(new_len))
    }

    fn append(&self, op: u8, key: &[u8], value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let n = write_record(&mut inner.writer, op, key, value)?;
        inner.log_len += n;
        match op {
            OP_PUT => {
                inner.map.insert(key.to_vec(), value.to_vec());
            }
            _ => {
                inner.map.remove(key);
            }
        }
        Ok(())
    }
}

fn write_record<W: Write>(w: &mut W, op: u8, key: &[u8], value: &[u8]) -> Result<u64> {
    let mut payload = Vec::with_capacity(1 + 4 + key.len() + value.len());
    payload.push(op);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    payload.extend_from_slice(value);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&fnv1a(&payload).to_le_bytes())?;
    Ok(4 + payload.len() as u64 + 8)
}

type ReplayResult = (std::collections::BTreeMap<Vec<u8>, Vec<u8>>, u64);

fn replay(path: &Path) -> Result<ReplayResult> {
    let mut map = std::collections::BTreeMap::new();
    let Ok(file) = File::open(path) else {
        return Ok((map, 0));
    };
    let mut r = BufReader::new(file);
    let mut valid_len = 0u64;
    loop {
        let mut len_buf = [0u8; 4];
        match r.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(_) => break,
        }
        let n = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; n];
        if r.read_exact(&mut payload).is_err() {
            break; // torn record
        }
        let mut sum_buf = [0u8; 8];
        if r.read_exact(&mut sum_buf).is_err() {
            break;
        }
        if u64::from_le_bytes(sum_buf) != fnv1a(&payload) {
            break; // corrupt record: truncate here
        }
        if payload.is_empty() {
            break;
        }
        let op = payload[0];
        if payload.len() < 5 {
            break;
        }
        let klen = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
        if payload.len() < 5 + klen {
            break;
        }
        let key = payload[5..5 + klen].to_vec();
        let value = payload[5 + klen..].to_vec();
        match op {
            OP_PUT => {
                map.insert(key, value);
            }
            OP_DELETE => {
                map.remove(&key);
            }
            _ => break,
        }
        valid_len += 4 + n as u64 + 8;
    }
    // Seek guard: the caller truncates the file to `valid_len`.
    let _ = r.seek(SeekFrom::Start(valid_len));
    Ok((map, valid_len))
}

impl KvStore for LogKvStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.stats.on_put((key.len() + value.len()) as u64);
        self.append(OP_PUT, key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let got = self.inner.lock().map.get(key).cloned();
        self.stats.on_get(got.as_ref().map_or(0, |v| v.len() as u64));
        Ok(got)
    }

    fn delete(&self, key: &[u8]) -> Result<bool> {
        let existed = self.inner.lock().map.contains_key(key);
        if existed {
            self.append(OP_DELETE, key, &[])?;
        }
        Ok(existed)
    }

    fn scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>> {
        let inner = self.inner.lock();
        let out: Vec<KvPair> = inner
            .map
            .range(start.to_vec()..end.to_vec())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        self.stats
            .on_scan(out.iter().map(|(_, v)| v.len() as u64).sum());
        Ok(out)
    }

    fn update(&self, key: &[u8], f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>) -> Result<()> {
        // Hold the lock across read and write so concurrent updates serialize.
        let mut inner = self.inner.lock();
        let new = f(inner.map.get(key).map(|v| v.as_slice()));
        self.stats.on_put((key.len() + new.len()) as u64);
        let n = write_record(&mut inner.writer, OP_PUT, key, &new)?;
        inner.log_len += n;
        inner.map.insert(key.to_vec(), new);
        Ok(())
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    fn logical_size_bytes(&self) -> u64 {
        self.inner
            .lock()
            .map
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    fn flush(&self) -> Result<()> {
        self.inner
            .lock()
            .writer
            .flush()
            .map_err(DgfError::from)
    }

    fn stats(&self) -> &KvStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::TempDir;

    #[test]
    fn basic_ops_and_persistence() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        {
            let kv = LogKvStore::open(&p).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.delete(b"a").unwrap();
            kv.flush().unwrap();
        }
        let kv = LogKvStore::open(&p).unwrap();
        assert!(kv.get(b"a").unwrap().is_none());
        assert_eq!(kv.get(b"b").unwrap().unwrap(), b"2");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        {
            let kv = LogKvStore::open(&p).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.flush().unwrap();
        }
        // Chop 5 bytes off the tail, tearing the second record.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 5).unwrap();

        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert!(kv.get(b"b").unwrap().is_none());
        // And the store keeps working after recovery.
        kv.put(b"c", b"3").unwrap();
        kv.flush().unwrap();
        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"c").unwrap().unwrap(), b"3");
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        {
            let kv = LogKvStore::open(&p).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.flush().unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();

        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert!(kv.get(b"b").unwrap().is_none());
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        let kv = LogKvStore::open(&p).unwrap();
        for i in 0..100u32 {
            kv.put(b"hot", &i.to_le_bytes()).unwrap();
        }
        let before = kv.log_len();
        let reclaimed = kv.compact().unwrap();
        assert!(reclaimed > 0);
        assert!(kv.log_len() < before);
        assert_eq!(kv.get(b"hot").unwrap().unwrap(), 99u32.to_le_bytes());
        // Still durable after compaction.
        kv.flush().unwrap();
        drop(kv);
        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"hot").unwrap().unwrap(), 99u32.to_le_bytes());
    }

    #[test]
    fn update_persists() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        {
            let kv = LogKvStore::open(&p).unwrap();
            kv.update(b"k", &mut |_| b"v1".to_vec()).unwrap();
            kv.update(b"k", &mut |old| {
                assert_eq!(old.unwrap(), b"v1");
                b"v2".to_vec()
            })
            .unwrap();
            kv.flush().unwrap();
        }
        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn scan_matches_mem_semantics() {
        let t = TempDir::new("logkv").unwrap();
        let kv = LogKvStore::open(t.path().join("kv.log")).unwrap();
        for k in [&b"a"[..], b"b", b"c"] {
            kv.put(k, k).unwrap();
        }
        let got = kv.scan_range(b"a", b"c").unwrap();
        assert_eq!(got.len(), 2);
        let got = kv.scan_prefix(b"b").unwrap();
        assert_eq!(got.len(), 1);
    }
}
