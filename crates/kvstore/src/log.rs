//! A persistent, log-structured key-value store.
//!
//! Writes append checksummed records to a single log file; the full live
//! key set is kept in an in-memory ordered map (GFU entries are tiny — a
//! few dozen bytes — so even a large grid fits comfortably). On open, the
//! log is replayed; a torn or corrupt tail is truncated rather than
//! poisoning the store. `compact` rewrites the log to contain only live
//! entries; the store also tracks dead (overwritten or deleted) bytes and
//! compacts opportunistically at [`flush`](crate::KvStore::flush) once
//! they exceed a configurable fraction of the log (see [`LogKvConfig`]).
//! The trigger deliberately sits at flush — a durability boundary —
//! rather than inline on the put path, so a single metadata put mid
//! staged-commit never pays a full log rewrite's tail latency.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use dgf_common::codec::fnv1a;
use dgf_common::{DgfError, Result};

use crate::traits::{KvPair, KvStats, KvStore};

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Framed on-disk size of one record: `[u32 len] + payload + [u64 sum]`
/// where the payload is `op(1) | key_len(u32) | key | value`.
fn framed_len(key_len: usize, value_len: usize) -> u64 {
    4 + (1 + 4 + key_len + value_len) as u64 + 8
}

/// Tuning knobs for [`LogKvStore`].
#[derive(Debug, Clone)]
pub struct LogKvConfig {
    /// Run [`compact`](LogKvStore::compact) automatically at `flush`
    /// once the dead fraction exceeds
    /// [`compact_dead_ratio`](LogKvConfig::compact_dead_ratio) —
    /// individual puts stay cheap appends. Manual compaction stays
    /// available either way.
    pub auto_compact: bool,
    /// Never auto-compact logs smaller than this (rewriting a tiny log
    /// buys nothing).
    pub compact_min_bytes: u64,
    /// Auto-compact when `dead_bytes / log_len` exceeds this fraction.
    pub compact_dead_ratio: f64,
}

impl Default for LogKvConfig {
    fn default() -> Self {
        LogKvConfig {
            auto_compact: true,
            compact_min_bytes: 1 << 20,
            compact_dead_ratio: 0.5,
        }
    }
}

/// On-disk record layout:
/// `[u32 payload_len][payload][u64 fnv1a(payload)]` where
/// `payload = op(1) | key_len(u32) | key | value`.
#[derive(Debug)]
struct Inner {
    map: std::collections::BTreeMap<Vec<u8>, Vec<u8>>,
    writer: BufWriter<File>,
    log_len: u64,
    /// Bytes of the log owed to overwritten or deleted records (the
    /// superseded record plus, for deletes, the tombstone itself).
    dead_bytes: u64,
}

/// A crash-safe single-file key-value store.
#[derive(Debug)]
pub struct LogKvStore {
    path: PathBuf,
    inner: Mutex<Inner>,
    stats: KvStats,
    config: LogKvConfig,
}

impl LogKvStore {
    /// Open (or create) the store at `path`, replaying any existing log.
    pub fn open(path: impl Into<PathBuf>) -> Result<LogKvStore> {
        Self::open_with(path, LogKvConfig::default())
    }

    /// Open with explicit [`LogKvConfig`] (compaction policy).
    pub fn open_with(path: impl Into<PathBuf>, config: LogKvConfig) -> Result<LogKvStore> {
        let path = path.into();
        let (map, valid_len, dead_bytes) = replay(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        // Drop a torn tail so subsequent appends start at a record boundary.
        if file.metadata()?.len() > valid_len {
            file.set_len(valid_len)?;
        }
        Ok(LogKvStore {
            path,
            inner: Mutex::new(Inner {
                map,
                writer: BufWriter::new(file),
                log_len: valid_len,
                dead_bytes,
            }),
            stats: KvStats::default(),
            config,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Physical log length in bytes (grows with every write until
    /// [`compact`](Self::compact)).
    pub fn log_len(&self) -> u64 {
        self.inner.lock().log_len
    }

    /// Bytes of the log owed to overwritten or deleted records.
    pub fn dead_bytes(&self) -> u64 {
        self.inner.lock().dead_bytes
    }

    /// Rewrite the log to hold only live entries. Returns bytes reclaimed.
    pub fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<u64> {
        inner.writer.flush()?;
        let tmp = self.path.with_extension("compact");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for (k, v) in &inner.map {
                write_record(&mut w, OP_PUT, k, v)?;
            }
            w.flush()?;
        }
        let old_len = inner.log_len;
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        let new_len = file.metadata()?.len();
        inner.writer = BufWriter::new(file);
        inner.log_len = new_len;
        inner.dead_bytes = 0;
        self.stats.on_compact();
        Ok(old_len.saturating_sub(new_len))
    }

    /// Compact if the dead fraction crossed the configured threshold.
    /// Called with the lock held from `flush` — never from the put path,
    /// where an inline rewrite would add unbounded tail latency to (for
    /// example) a metadata put inside a staged commit.
    fn maybe_auto_compact(&self, inner: &mut Inner) -> Result<()> {
        if !self.config.auto_compact
            || inner.log_len < self.config.compact_min_bytes
            || inner.dead_bytes == 0
        {
            return Ok(());
        }
        let dead_frac = inner.dead_bytes as f64 / inner.log_len as f64;
        if dead_frac > self.config.compact_dead_ratio {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    fn append(&self, op: u8, key: &[u8], value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let n = write_record(&mut inner.writer, op, key, value)?;
        inner.log_len += n;
        match op {
            OP_PUT => {
                if let Some(old) = inner.map.insert(key.to_vec(), value.to_vec()) {
                    inner.dead_bytes += framed_len(key.len(), old.len());
                }
            }
            _ => {
                if let Some(old) = inner.map.remove(key) {
                    // The superseded put and the tombstone both vanish at
                    // the next compaction.
                    inner.dead_bytes += framed_len(key.len(), old.len()) + n;
                }
            }
        }
        Ok(())
    }
}

fn write_record<W: Write>(w: &mut W, op: u8, key: &[u8], value: &[u8]) -> Result<u64> {
    let mut payload = Vec::with_capacity(1 + 4 + key.len() + value.len());
    payload.push(op);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    payload.extend_from_slice(value);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&fnv1a(&payload).to_le_bytes())?;
    Ok(4 + payload.len() as u64 + 8)
}

type ReplayResult = (std::collections::BTreeMap<Vec<u8>, Vec<u8>>, u64, u64);

fn replay(path: &Path) -> Result<ReplayResult> {
    let mut map = std::collections::BTreeMap::new();
    let Ok(file) = File::open(path) else {
        return Ok((map, 0, 0));
    };
    let mut r = BufReader::new(file);
    let mut valid_len = 0u64;
    let mut dead_bytes = 0u64;
    loop {
        let mut len_buf = [0u8; 4];
        match r.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(_) => break,
        }
        let n = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; n];
        if r.read_exact(&mut payload).is_err() {
            break; // torn record
        }
        let mut sum_buf = [0u8; 8];
        if r.read_exact(&mut sum_buf).is_err() {
            break;
        }
        if u64::from_le_bytes(sum_buf) != fnv1a(&payload) {
            break; // corrupt record: truncate here
        }
        if payload.is_empty() {
            break;
        }
        let op = payload[0];
        if payload.len() < 5 {
            break;
        }
        let klen = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
        if payload.len() < 5 + klen {
            break;
        }
        let key = payload[5..5 + klen].to_vec();
        let value = payload[5 + klen..].to_vec();
        let rec_len = 4 + n as u64 + 8;
        match op {
            OP_PUT => {
                if let Some(old) = map.insert(key.clone(), value) {
                    dead_bytes += framed_len(key.len(), old.len());
                }
            }
            OP_DELETE => {
                if let Some(old) = map.remove(&key) {
                    dead_bytes += framed_len(key.len(), old.len()) + rec_len;
                }
            }
            _ => break,
        }
        valid_len += rec_len;
    }
    // Seek guard: the caller truncates the file to `valid_len`.
    let _ = r.seek(SeekFrom::Start(valid_len));
    Ok((map, valid_len, dead_bytes))
}

impl KvStore for LogKvStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.stats.on_put((key.len() + value.len()) as u64);
        self.append(OP_PUT, key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let got = self.inner.lock().map.get(key).cloned();
        self.stats.on_get(got.as_ref().map_or(0, |v| v.len() as u64));
        Ok(got)
    }

    fn delete(&self, key: &[u8]) -> Result<bool> {
        let existed = self.inner.lock().map.contains_key(key);
        if existed {
            self.append(OP_DELETE, key, &[])?;
        }
        Ok(existed)
    }

    fn scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>> {
        let inner = self.inner.lock();
        let out: Vec<KvPair> = inner
            .map
            .range(start.to_vec()..end.to_vec())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        self.stats
            .on_scan(out.iter().map(|(_, v)| v.len() as u64).sum());
        Ok(out)
    }

    fn update(&self, key: &[u8], f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>) -> Result<()> {
        // Hold the lock across read and write so concurrent updates serialize.
        let mut inner = self.inner.lock();
        let new = f(inner.map.get(key).map(|v| v.as_slice()));
        self.stats.on_put((key.len() + new.len()) as u64);
        let n = write_record(&mut inner.writer, OP_PUT, key, &new)?;
        inner.log_len += n;
        if let Some(old) = inner.map.insert(key.to_vec(), new) {
            inner.dead_bytes += framed_len(key.len(), old.len());
        }
        Ok(())
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        // One lock acquisition for the whole batch — the single-RPC
        // analogue the planner's batched GFU fetch counts on.
        let inner = self.inner.lock();
        let out: Vec<Option<Vec<u8>>> = keys.iter().map(|k| inner.map.get(k).cloned()).collect();
        let bytes: u64 = out
            .iter()
            .map(|v| v.as_ref().map_or(0, |v| v.len() as u64))
            .sum();
        self.stats.on_multi_get(keys.len() as u64, bytes);
        Ok(out)
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    fn logical_size_bytes(&self) -> u64 {
        self.inner
            .lock()
            .map
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writer.flush().map_err(DgfError::from)?;
        self.maybe_auto_compact(&mut inner)
    }

    /// Threshold-gated compaction for the maintenance daemon. Serving
    /// paths never call `flush()` — its opportunistic compaction would
    /// otherwise be the log's only bound, and a store under sustained
    /// appends would leak dead bytes forever. Runs regardless of
    /// `auto_compact` (that flag only governs the flush-time trigger),
    /// but still respects the size floor and dead-ratio threshold so an
    /// idle store is not rewritten for nothing.
    fn maintain(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        inner.writer.flush().map_err(DgfError::from)?;
        if inner.log_len < self.config.compact_min_bytes || inner.dead_bytes == 0 {
            return Ok(0);
        }
        let dead_frac = inner.dead_bytes as f64 / inner.log_len as f64;
        if dead_frac <= self.config.compact_dead_ratio {
            return Ok(0);
        }
        self.compact_locked(&mut inner)
    }

    fn stats(&self) -> &KvStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::TempDir;

    #[test]
    fn basic_ops_and_persistence() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        {
            let kv = LogKvStore::open(&p).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.delete(b"a").unwrap();
            kv.flush().unwrap();
        }
        let kv = LogKvStore::open(&p).unwrap();
        assert!(kv.get(b"a").unwrap().is_none());
        assert_eq!(kv.get(b"b").unwrap().unwrap(), b"2");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        {
            let kv = LogKvStore::open(&p).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.flush().unwrap();
        }
        // Chop 5 bytes off the tail, tearing the second record.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 5).unwrap();

        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert!(kv.get(b"b").unwrap().is_none());
        // And the store keeps working after recovery.
        kv.put(b"c", b"3").unwrap();
        kv.flush().unwrap();
        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"c").unwrap().unwrap(), b"3");
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        {
            let kv = LogKvStore::open(&p).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.flush().unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();

        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert!(kv.get(b"b").unwrap().is_none());
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        let kv = LogKvStore::open(&p).unwrap();
        for i in 0..100u32 {
            kv.put(b"hot", &i.to_le_bytes()).unwrap();
        }
        let before = kv.log_len();
        let reclaimed = kv.compact().unwrap();
        assert!(reclaimed > 0);
        assert!(kv.log_len() < before);
        assert_eq!(kv.get(b"hot").unwrap().unwrap(), 99u32.to_le_bytes());
        // Still durable after compaction.
        kv.flush().unwrap();
        drop(kv);
        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"hot").unwrap().unwrap(), 99u32.to_le_bytes());
    }

    #[test]
    fn dead_bytes_track_overwrites_and_survive_reopen() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        let cfg = LogKvConfig {
            auto_compact: false,
            ..LogKvConfig::default()
        };
        {
            let kv = LogKvStore::open_with(&p, cfg.clone()).unwrap();
            assert_eq!(kv.dead_bytes(), 0);
            kv.put(b"k", b"v1").unwrap();
            assert_eq!(kv.dead_bytes(), 0);
            kv.put(b"k", b"v2").unwrap();
            // Overwrite kills the first record: 17 + klen + vlen bytes.
            assert_eq!(kv.dead_bytes(), 17 + 1 + 2);
            kv.put(b"gone", b"x").unwrap();
            kv.delete(b"gone").unwrap();
            // Delete kills the put and its own tombstone.
            assert_eq!(kv.dead_bytes(), (17 + 1 + 2) + (17 + 4 + 1) + (17 + 4));
            kv.flush().unwrap();
        }
        // Replay recomputes the same dead-byte count.
        let kv = LogKvStore::open_with(&p, cfg).unwrap();
        assert_eq!(kv.dead_bytes(), (17 + 1 + 2) + (17 + 4 + 1) + (17 + 4));
        // Manual compaction resets it and bumps the counter.
        kv.compact().unwrap();
        assert_eq!(kv.dead_bytes(), 0);
        assert_eq!(kv.stats().snapshot().compactions, 1);
    }

    #[test]
    fn auto_compaction_triggers_on_dead_ratio() {
        let t = TempDir::new("logkv").unwrap();
        let kv = LogKvStore::open_with(
            t.path().join("kv.log"),
            LogKvConfig {
                auto_compact: true,
                compact_min_bytes: 256,
                compact_dead_ratio: 0.5,
            },
        )
        .unwrap();
        // Hammer one key: almost every byte of the log goes dead, so the
        // store must compact itself at the flush boundaries along the way
        // (puts themselves never compact — they stay cheap appends).
        for i in 0..200u32 {
            kv.put(b"hot", &i.to_le_bytes()).unwrap();
            kv.flush().unwrap();
        }
        let snap = kv.stats().snapshot();
        assert!(snap.compactions > 0, "auto-compaction never ran");
        // Live state intact, log bounded near a single record.
        assert_eq!(kv.get(b"hot").unwrap().unwrap(), 199u32.to_le_bytes());
        assert!(kv.log_len() < 256 + 64);
        // Dead bytes are bounded by the trigger point (`compact_min_bytes`
        // floor plus one record), not by the 4.8 KB the 200 puts appended.
        assert!(kv.dead_bytes() <= 256 + 32);
    }

    #[test]
    fn multi_get_is_one_batch() {
        let t = TempDir::new("logkv").unwrap();
        let kv = LogKvStore::open(t.path().join("kv.log")).unwrap();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"c", b"3").unwrap();
        let got = kv
            .multi_get(&[b"a".to_vec(), b"b".to_vec(), b"c".to_vec()])
            .unwrap();
        assert_eq!(
            got,
            vec![Some(b"1".to_vec()), None, Some(b"3".to_vec())]
        );
        let snap = kv.stats().snapshot();
        // One batched round trip, zero single-key fallbacks.
        assert_eq!(snap.multi_gets, 1);
        assert_eq!(snap.multi_get_keys, 3);
        assert_eq!(snap.gets, 0);
    }

    #[test]
    fn update_persists() {
        let t = TempDir::new("logkv").unwrap();
        let p = t.path().join("kv.log");
        {
            let kv = LogKvStore::open(&p).unwrap();
            kv.update(b"k", &mut |_| b"v1".to_vec()).unwrap();
            kv.update(b"k", &mut |old| {
                assert_eq!(old.unwrap(), b"v1");
                b"v2".to_vec()
            })
            .unwrap();
            kv.flush().unwrap();
        }
        let kv = LogKvStore::open(&p).unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn scan_matches_mem_semantics() {
        let t = TempDir::new("logkv").unwrap();
        let kv = LogKvStore::open(t.path().join("kv.log")).unwrap();
        for k in [&b"a"[..], b"b", b"c"] {
            kv.put(k, k).unwrap();
        }
        let got = kv.scan_range(b"a", b"c").unwrap();
        assert_eq!(got.len(), 2);
        let got = kv.scan_prefix(b"b").unwrap();
        assert_eq!(got.len(), 1);
    }
}
