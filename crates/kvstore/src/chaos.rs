//! A fault-injecting decorator.
//!
//! The paper's DGFIndex trusts HBase to ride out region-server hiccups;
//! this reproduction has to earn that trust explicitly. [`ChaosKv`]
//! wraps any [`KvStore`] and consults a shared
//! [`FaultPlan`] before every operation:
//! the plan may inject a transient error (which a
//! [`RetryPolicy`](dgf_common::fault::RetryPolicy) upstream is expected
//! to absorb), stall the call with a latency spike, or — once a
//! configured crash trigger fires — fail *every* subsequent operation,
//! modeling a dead store process. Because the plan is seeded and
//! deterministic, a chaos test that fails replays byte-for-byte.
//!
//! The wrapper holds its inner store behind an [`Arc`], so a test can
//! keep a second, fault-free handle to the same data and verify that a
//! "crashed" store's surviving state is still fully queryable.

use std::sync::Arc;

use dgf_common::fault::FaultPlan;
use dgf_common::Result;

use crate::traits::{KvPair, KvStats, KvStore};

/// A [`KvStore`] decorator that injects faults from a [`FaultPlan`].
pub struct ChaosKv {
    inner: Arc<dyn KvStore>,
    plan: Arc<FaultPlan>,
}

impl ChaosKv {
    /// Wrap `inner`, drawing faults from `plan`.
    pub fn new(inner: Arc<dyn KvStore>, plan: Arc<FaultPlan>) -> ChaosKv {
        ChaosKv { inner, plan }
    }

    /// The wrapped store (a clean handle that bypasses fault injection).
    pub fn inner(&self) -> &Arc<dyn KvStore> {
        &self.inner
    }

    /// The fault schedule this wrapper consults.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl KvStore for ChaosKv {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.plan.before_write("kv.put")?;
        self.inner.put(key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.plan.before_read("kv.get")?;
        self.inner.get(key)
    }

    fn delete(&self, key: &[u8]) -> Result<bool> {
        self.plan.before_write("kv.delete")?;
        self.inner.delete(key)
    }

    fn scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>> {
        self.plan.before_read("kv.scan_range")?;
        self.inner.scan_range(start, end)
    }

    fn update(&self, key: &[u8], f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>) -> Result<()> {
        // The fault fires before `f` runs, so a retried update re-reads
        // the current value and stays a correct read-modify-write.
        self.plan.before_write("kv.update")?;
        self.inner.update(key, f)
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        self.plan.before_read("kv.multi_get")?;
        self.inner.multi_get(keys)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<KvPair>> {
        // One fault draw per prefix scan; the default trait impl would
        // re-enter scan_range and draw twice.
        self.plan.before_read("kv.scan_prefix")?;
        self.inner.scan_prefix(prefix)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn logical_size_bytes(&self) -> u64 {
        self.inner.logical_size_bytes()
    }

    fn flush(&self) -> Result<()> {
        self.plan.before_write("kv.flush")?;
        self.inner.flush()
    }

    fn maintain(&self) -> Result<u64> {
        self.plan.before_write("kv.maintain")?;
        self.inner.maintain()
    }

    fn stats(&self) -> &KvStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemKvStore;
    use dgf_common::fault::{is_transient, FaultConfig, RetryPolicy};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn chaos(cfg: FaultConfig) -> ChaosKv {
        ChaosKv::new(Arc::new(MemKvStore::new()), Arc::new(FaultPlan::new(cfg)))
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let kv = chaos(FaultConfig::quiet(1));
        kv.put(b"a", b"1").unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(kv.scan_prefix(b"a").unwrap().len(), 1);
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.plan().faults_injected(), 0);
    }

    #[test]
    fn transient_faults_are_injected_and_typed() {
        let kv = chaos(FaultConfig::transient(7, 1.0));
        let err = kv.get(b"a").unwrap_err();
        assert!(is_transient(&err), "injected faults must be transient");
        assert_eq!(kv.plan().faults_injected(), 1);
    }

    #[test]
    fn retry_loop_absorbs_scheduled_faults() {
        // p = 0.5 with 20 attempts: success is effectively certain, and
        // the absorbed count equals the number of injected faults.
        let kv = chaos(FaultConfig::transient(11, 0.5));
        kv.inner().put(b"k", b"v").unwrap();
        let absorbed = AtomicU64::new(0);
        let got = RetryPolicy::fast(20)
            .run(&absorbed, || kv.get(b"k"))
            .unwrap();
        assert_eq!(got.unwrap(), b"v");
        assert_eq!(absorbed.load(Ordering::Relaxed), kv.plan().faults_injected());
    }

    #[test]
    fn crash_after_writes_kills_the_store_but_not_the_data() {
        let kv = chaos(FaultConfig::crash_after_writes(3, 3));
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        let err = kv.put(b"c", b"3").unwrap_err();
        assert!(!is_transient(&err), "a crash is not retryable");
        // Sticky: even reads fail now.
        assert!(kv.get(b"a").is_err());
        assert!(kv.scan_range(b"a", b"z").is_err());
        // But the inner store survived with the acknowledged writes only.
        assert_eq!(kv.inner().len(), 2);
        assert_eq!(kv.inner().get(b"a").unwrap().unwrap(), b"1");
    }

    #[test]
    fn stats_pass_through_composes_over_latency_kv() {
        use crate::latency::{LatencyKv, LatencyModel};
        // ChaosKv over LatencyKv over MemKvStore: stats() must reach the
        // base store through both decorators, and operations through the
        // chaos wrapper must be the ones accounted.
        let base = Arc::new(LatencyKv::new(MemKvStore::new(), LatencyModel::ZERO));
        let kv = ChaosKv::new(base, Arc::new(FaultPlan::new(FaultConfig::quiet(5))));
        kv.put(b"a", b"1").unwrap();
        kv.get(b"a").unwrap();
        kv.multi_get(&[b"a".to_vec()]).unwrap();
        kv.scan_prefix(b"a").unwrap();
        let snap = kv.stats().snapshot();
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.gets, 1);
        assert_eq!(snap.multi_gets, 1);
        assert_eq!(snap.multi_get_keys, 1);
        assert_eq!(snap.scans, 1);
    }

    #[test]
    fn stats_pass_through_to_inner() {
        let kv = chaos(FaultConfig::quiet(1));
        kv.put(b"a", b"1").unwrap();
        kv.get(b"a").unwrap();
        let snap = kv.stats().snapshot();
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.gets, 1);
    }
}
