//! The `KvStore` abstraction.
//!
//! The paper stores `GFUKey → GFUValue` pairs in a distributed key-value
//! store ("we can utilize HBase, Cassandra, or Voldemort … in the current
//! implementation, we use HBase"). The index layer only needs ordered
//! get/put/scan, so it programs against this trait and any conforming store
//! can back a DGFIndex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgf_common::obs::{names, MetricsRegistry, SpanGuard};
use dgf_common::Result;

/// A key-value pair.
pub type KvPair = (Vec<u8>, Vec<u8>);

/// Operation counters for a key-value store.
///
/// "Read index time" in the paper's figures is dominated by these
/// operations; benches snapshot them to attribute time between index access
/// and data access.
#[derive(Debug, Default)]
pub struct KvStats {
    /// Single-key `get` lookups (and per-key fallbacks of un-batched
    /// `multi_get` implementations).
    pub gets: AtomicU64,
    /// `put` operations.
    pub puts: AtomicU64,
    /// Range/prefix scans.
    pub scans: AtomicU64,
    /// Batched `multi_get` round trips (one per batch, however large).
    pub multi_gets: AtomicU64,
    /// Total keys requested across all batched `multi_get` calls.
    pub multi_get_keys: AtomicU64,
    /// Value bytes returned to callers.
    pub bytes_read: AtomicU64,
    /// Key+value bytes written.
    pub bytes_written: AtomicU64,
    /// Transient faults absorbed by retry loops around this store.
    pub retries_absorbed: AtomicU64,
    /// Log compactions run by the store (manual calls and opportunistic
    /// auto-compactions alike; always 0 for purely in-memory stores).
    pub compactions: AtomicU64,
}

impl KvStats {
    /// Record a lookup returning `n` value bytes.
    pub fn on_get(&self, n: u64) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a write of `n` key+value bytes.
    pub fn on_put(&self, n: u64) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a scan returning `n` value bytes.
    pub fn on_scan(&self, n: u64) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one batched lookup of `keys` keys returning `n` value bytes.
    pub fn on_multi_get(&self, keys: u64, n: u64) {
        self.multi_gets.fetch_add(1, Ordering::Relaxed);
        self.multi_get_keys.fetch_add(keys, Ordering::Relaxed);
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one log compaction.
    pub fn on_compact(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> KvStatsSnapshot {
        KvStatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            multi_gets: self.multi_gets.load(Ordering::Relaxed),
            multi_get_keys: self.multi_get_keys.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            retries_absorbed: self.retries_absorbed.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.scans.store(0, Ordering::Relaxed);
        self.multi_gets.store(0, Ordering::Relaxed);
        self.multi_get_keys.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.retries_absorbed.store(0, Ordering::Relaxed);
        self.compactions.store(0, Ordering::Relaxed);
    }
}

/// A plain-value copy of [`KvStats`], for before/after deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KvStatsSnapshot {
    /// Single-key `get` lookups.
    pub gets: u64,
    /// `put` operations.
    pub puts: u64,
    /// Range/prefix scans.
    pub scans: u64,
    /// Batched `multi_get` round trips.
    pub multi_gets: u64,
    /// Total keys requested across all batched `multi_get` calls.
    pub multi_get_keys: u64,
    /// Value bytes returned to callers.
    pub bytes_read: u64,
    /// Key+value bytes written.
    pub bytes_written: u64,
    /// Transient faults absorbed by retry loops around this store.
    pub retries_absorbed: u64,
    /// Log compactions run by the store.
    pub compactions: u64,
}

impl KvStatsSnapshot {
    /// Read-side round trips: each `get`, each scan, and each batched
    /// `multi_get` count as one KV operation (one RPC in the paper's
    /// HBase deployment), regardless of how many keys or entries they
    /// carry.
    pub fn read_ops(&self) -> u64 {
        self.gets + self.scans + self.multi_gets
    }

    /// Project this snapshot into a [`MetricsRegistry`] under the stable
    /// `kv.*` names (see [`dgf_common::obs::names`]).
    pub fn record_into(&self, reg: &MetricsRegistry) {
        for (name, v) in self.named() {
            reg.add(name, v);
        }
    }

    /// Attach this snapshot (usually a delta) to a span under the `kv.*`
    /// names. Zero-valued counters are skipped to keep profiles readable.
    pub fn attach_to_span(&self, span: &SpanGuard) {
        for (name, v) in self.named() {
            if v > 0 {
                span.add(name, v);
            }
        }
    }

    fn named(&self) -> [(&'static str, u64); 9] {
        [
            (names::KV_GETS, self.gets),
            (names::KV_PUTS, self.puts),
            (names::KV_SCANS, self.scans),
            (names::KV_MULTI_GETS, self.multi_gets),
            (names::KV_MULTI_GET_KEYS, self.multi_get_keys),
            (names::KV_BYTES_READ, self.bytes_read),
            (names::KV_BYTES_WRITTEN, self.bytes_written),
            (names::KV_RETRIES_ABSORBED, self.retries_absorbed),
            (names::KV_COMPACTIONS, self.compactions),
        ]
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &KvStatsSnapshot) -> KvStatsSnapshot {
        KvStatsSnapshot {
            gets: self.gets.saturating_sub(earlier.gets),
            puts: self.puts.saturating_sub(earlier.puts),
            scans: self.scans.saturating_sub(earlier.scans),
            multi_gets: self.multi_gets.saturating_sub(earlier.multi_gets),
            multi_get_keys: self.multi_get_keys.saturating_sub(earlier.multi_get_keys),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            retries_absorbed: self.retries_absorbed.saturating_sub(earlier.retries_absorbed),
            compactions: self.compactions.saturating_sub(earlier.compactions),
        }
    }
}

/// An ordered key-value store.
///
/// All operations are safe for concurrent use; `update` is an atomic
/// read-modify-write (the DGFIndex uses it to merge GFU headers when new
/// data lands in an existing cell).
pub trait KvStore: Send + Sync {
    /// Insert or replace `key`.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Look up `key`.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Remove `key`, returning whether it existed.
    fn delete(&self, key: &[u8]) -> Result<bool>;

    /// All pairs with `start <= key < end`, in key order.
    fn scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>>;

    /// Atomically replace the value at `key` with `f(current)`.
    fn update(&self, key: &[u8], f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>) -> Result<()>;

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Logical size: the sum of live key and value lengths. This is the
    /// paper's "index size" metric for DGFIndex (Table 2, Table 5).
    fn logical_size_bytes(&self) -> u64;

    /// Make all writes durable (no-op for memory stores).
    fn flush(&self) -> Result<()>;

    /// Operation counters.
    fn stats(&self) -> &KvStats;

    /// Whether the store holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Batched lookup preserving input order: the result has exactly one
    /// entry per requested key, `None` where the key is absent.
    ///
    /// **Snapshot atomicity**: an override that serves the batch in a
    /// single operation must read every key under one consistent view of
    /// the store — no concurrent writer's puts may land between the
    /// batch's reads. Readers rely on this to pin a coherent set of meta
    /// keys with one call (see `dgf_core`'s legacy read-view fallback);
    /// a torn batch there is exactly the blended-epoch read the versioned
    /// view protocol exists to prevent.
    ///
    /// The default implementation degrades to one `get` round trip per
    /// key and is therefore **not** atomic under concurrent writes;
    /// stores that can serve a batch in a single operation should
    /// override it and record the batch via [`KvStats::on_multi_get`].
    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Run the store's background maintenance (log compaction, garbage
    /// reclamation), returning the number of bytes reclaimed. Unlike
    /// [`flush`](Self::flush) — which serving paths may never call —
    /// this is invoked explicitly by the index maintenance daemon, so a
    /// store whose opportunistic compaction only piggybacks on other
    /// operations still gets bounded under sustained appends. The
    /// default is a no-op: purely in-memory stores hold no dead bytes.
    fn maintain(&self) -> Result<u64> {
        Ok(0)
    }

    /// All pairs whose key starts with `prefix`, in key order.
    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<KvPair>> {
        match prefix_upper_bound(prefix) {
            Some(end) => self.scan_range(prefix, &end),
            // Prefix of all 0xFF bytes: scan to the end of the keyspace by
            // using an impossible sentinel — handled by stores as unbounded.
            None => {
                let mut all = self.scan_range(prefix, &[0xFFu8; 64])?;
                all.retain(|(k, _)| k.starts_with(prefix));
                Ok(all)
            }
        }
    }
}

/// Shared trait-object handle.
pub type KvRef = Arc<dyn KvStore>;

/// The smallest byte string strictly greater than every string starting
/// with `prefix`, or `None` when no such bound exists (all-0xFF prefix).
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_bound_simple() {
        assert_eq!(prefix_upper_bound(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_upper_bound(&[1, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_upper_bound(b""), None);
    }

    #[test]
    fn scan_prefix_handles_unbounded_prefixes() {
        use crate::mem::MemKvStore;
        let kv = MemKvStore::new();
        kv.put(&[0xFF, 0xFF, 1], b"a").unwrap();
        kv.put(&[0xFF, 0xFF, 0xFF], b"b").unwrap();
        kv.put(&[0xFF, 0xFE], b"other").unwrap();
        kv.put(b"low", b"c").unwrap();

        // All-0xFF prefix has no upper bound; the sentinel path must
        // still return exactly the matching keys.
        let got = kv.scan_prefix(&[0xFF, 0xFF]).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(k, _)| k.starts_with(&[0xFF, 0xFF])));

        // The empty prefix matches every key.
        let all = kv.scan_prefix(b"").unwrap();
        assert_eq!(all.len(), kv.len());
    }

    #[test]
    fn since_saturates_when_counters_were_reset() {
        let s = KvStats::default();
        s.on_get(100);
        s.on_put(50);
        let before = s.snapshot();
        s.reset();
        s.on_get(3);
        let after = s.snapshot();
        // `after` is numerically behind `before`; the delta must clamp to
        // zero instead of wrapping to u64::MAX.
        let d = after.since(&before);
        assert_eq!(d.gets, 0);
        assert_eq!(d.puts, 0);
        assert_eq!(d.bytes_read, 0);
        assert_eq!(d.bytes_written, 0);
        assert_eq!(d.retries_absorbed, 0);
        // And a forward delta still works on the reset counters.
        s.on_get(2);
        let d2 = s.snapshot().since(&after);
        assert_eq!(d2.gets, 1);
    }

    #[test]
    fn stats_accumulate() {
        let s = KvStats::default();
        s.on_get(10);
        s.on_put(20);
        s.on_scan(5);
        assert_eq!(s.gets.load(Ordering::Relaxed), 1);
        assert_eq!(s.bytes_read.load(Ordering::Relaxed), 15);
        assert_eq!(s.bytes_written.load(Ordering::Relaxed), 20);
        s.reset();
        assert_eq!(s.bytes_read.load(Ordering::Relaxed), 0);
    }
}
