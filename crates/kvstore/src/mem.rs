//! In-memory ordered key-value store.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use dgf_common::Result;

use crate::traits::{KvPair, KvStats, KvStore};

/// A thread-safe, ordered, in-memory store. The default backing for a
/// DGFIndex in tests and single-run benchmarks.
#[derive(Debug, Default)]
pub struct MemKvStore {
    map: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    stats: KvStats,
}

impl MemKvStore {
    /// An empty store.
    pub fn new() -> Self {
        MemKvStore::default()
    }
}

impl KvStore for MemKvStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.stats.on_put((key.len() + value.len()) as u64);
        self.map.write().insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let got = self.map.read().get(key).cloned();
        self.stats.on_get(got.as_ref().map_or(0, |v| v.len() as u64));
        Ok(got)
    }

    fn delete(&self, key: &[u8]) -> Result<bool> {
        Ok(self.map.write().remove(key).is_some())
    }

    fn scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>> {
        let map = self.map.read();
        let out: Vec<KvPair> = map
            .range(start.to_vec()..end.to_vec())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        self.stats
            .on_scan(out.iter().map(|(_, v)| v.len() as u64).sum());
        Ok(out)
    }

    fn update(&self, key: &[u8], f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>) -> Result<()> {
        let mut map = self.map.write();
        let new = f(map.get(key).map(|v| v.as_slice()));
        self.stats.on_put((key.len() + new.len()) as u64);
        map.insert(key.to_vec(), new);
        Ok(())
    }

    fn len(&self) -> usize {
        self.map.read().len()
    }

    fn logical_size_bytes(&self) -> u64 {
        self.map
            .read()
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn stats(&self) -> &KvStats {
        &self.stats
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // One lock acquisition for the whole batch — this is the moral
        // equivalent of HBase serving a multi-get in one RPC, and is what
        // the planner's batched header fetches rely on.
        let map = self.map.read();
        let out: Vec<Option<Vec<u8>>> = keys.iter().map(|k| map.get(k).cloned()).collect();
        let bytes = out
            .iter()
            .flatten()
            .map(|v| v.len() as u64)
            .sum::<u64>();
        self.stats.on_multi_get(keys.len() as u64, bytes);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let kv = MemKvStore::new();
        kv.put(b"a", b"1").unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert!(kv.get(b"b").unwrap().is_none());
        assert!(kv.delete(b"a").unwrap());
        assert!(!kv.delete(b"a").unwrap());
        assert!(kv.is_empty());
    }

    #[test]
    fn range_scan_is_ordered_half_open() {
        let kv = MemKvStore::new();
        for k in [b"a", b"b", b"c", b"d"] {
            kv.put(k, k).unwrap();
        }
        let got = kv.scan_range(b"b", b"d").unwrap();
        assert_eq!(
            got.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
            vec![b"b".as_slice(), b"c".as_slice()]
        );
    }

    #[test]
    fn prefix_scan() {
        let kv = MemKvStore::new();
        kv.put(b"row/1", b"x").unwrap();
        kv.put(b"row/2", b"y").unwrap();
        kv.put(b"other", b"z").unwrap();
        let got = kv.scan_prefix(b"row/").unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn update_is_read_modify_write() {
        let kv = MemKvStore::new();
        kv.update(b"k", &mut |old| {
            assert!(old.is_none());
            b"1".to_vec()
        })
        .unwrap();
        kv.update(b"k", &mut |old| {
            let mut v = old.unwrap().to_vec();
            v.extend_from_slice(b"+2");
            v
        })
        .unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), b"1+2");
    }

    #[test]
    fn logical_size_counts_live_bytes() {
        let kv = MemKvStore::new();
        kv.put(b"key", b"value").unwrap(); // 3 + 5
        kv.put(b"k2", b"v").unwrap(); // 2 + 1
        assert_eq!(kv.logical_size_bytes(), 11);
        kv.put(b"key", b"v2").unwrap(); // replaces: 3 + 2
        assert_eq!(kv.logical_size_bytes(), 8);
    }

    #[test]
    fn multi_get_preserves_order() {
        use std::sync::atomic::Ordering;
        let kv = MemKvStore::new();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"c", b"3").unwrap();
        let gets_before = kv.stats().gets.load(Ordering::Relaxed);
        let got = kv
            .multi_get(&[b"c".to_vec(), b"b".to_vec(), b"a".to_vec()])
            .unwrap();
        // One result slot per requested key, in request order, with a
        // `None` hole for the missing key.
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].as_deref(), Some(b"3".as_slice()));
        assert!(got[1].is_none());
        assert_eq!(got[2].as_deref(), Some(b"1".as_slice()));
        // The batch is one round trip: no per-key gets, one multi_get
        // covering all three keys (including the miss).
        assert_eq!(kv.stats().gets.load(Ordering::Relaxed), gets_before);
        assert_eq!(kv.stats().multi_gets.load(Ordering::Relaxed), 1);
        assert_eq!(kv.stats().multi_get_keys.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn multi_get_empty_key_list_is_free() {
        use std::sync::atomic::Ordering;
        let kv = MemKvStore::new();
        kv.put(b"a", b"1").unwrap();
        assert!(kv.multi_get(&[]).unwrap().is_empty());
        assert_eq!(kv.stats().multi_gets.load(Ordering::Relaxed), 0);
        assert_eq!(kv.stats().multi_get_keys.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn multi_get_is_a_snapshot_under_concurrent_writes() {
        use std::sync::Arc;
        // A writer flips two keys together between two values; a batched
        // reader must never see one key from before the flip and the
        // other from after — the trait's snapshot-atomicity contract.
        let kv = Arc::new(MemKvStore::new());
        kv.put(b"x", b"0").unwrap();
        kv.put(b"y", b"0").unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let kv = Arc::clone(&kv);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut round = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let v = round.to_string().into_bytes();
                    // Both puts under one write lock so the pair is
                    // always coherent in the store itself.
                    kv.update(b"x", &mut |_| v.clone()).unwrap();
                    kv.update(b"y", &mut |_| v.clone()).unwrap();
                    round += 1;
                }
            })
        };
        // `update` writes x then y separately, so a torn batch would show
        // x ahead of y. x == y or x one ahead (between the two updates)
        // are the only legal observations; x behind y means the batch
        // read y after a write that happened *during* the batch.
        for _ in 0..2000 {
            let got = kv.multi_get(&[b"x".to_vec(), b"y".to_vec()]).unwrap();
            let x: u64 = String::from_utf8(got[0].clone().unwrap()).unwrap().parse().unwrap();
            let y: u64 = String::from_utf8(got[1].clone().unwrap()).unwrap().parse().unwrap();
            assert!(x == y || x == y + 1, "torn multi_get: x={x} y={y}");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        use std::sync::Arc;
        let kv = Arc::new(MemKvStore::new());
        kv.put(b"n", &0u64.to_le_bytes()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    kv.update(b"n", &mut |old| {
                        let cur = u64::from_le_bytes(old.unwrap().try_into().unwrap());
                        (cur + 1).to_le_bytes().to_vec()
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = kv.get(b"n").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 800);
    }
}
