//! A range-partitioned shard router.
//!
//! The paper spreads GFU entries across HBase region servers by key
//! range; [`ShardedKv`] reproduces that topology in-process. N inner
//! stores ("shards") each own one contiguous slice of the keyspace,
//! split on the same order-preserving GFU key encoding the planner's
//! prefix-scan runs exploit — so a run of consecutive cells stays
//! contiguous *within* a shard and a cross-shard run splits into at most
//! one sub-range per shard, never an interleaving.
//!
//! ## Snapshot atomicity
//!
//! The [`KvStore`] contract says an overridden `multi_get` must serve
//! the whole batch under one consistent view. A single shard inherits
//! that from its inner store, but a batch straddling shards could tear:
//! shard A read before a writer's pair of puts, shard B after. The
//! router closes that window with a two-sided gate: every mutation
//! routed through the router holds the gate in *shared* mode, and every
//! cross-shard batch (`multi_get` or `scan_range`) holds it in
//! *exclusive* mode for the duration of the fan-out. Writers never block
//! each other; a cross-shard batch briefly drains and excludes them,
//! which is exactly a snapshot. Single-shard batches skip the gate and
//! delegate, because the shard's own atomicity suffices. (Writes that
//! bypass the router and go straight to a shard are outside the
//! contract, just as writes bypassing a region server would be.)
//!
//! ## Accounting
//!
//! The router keeps its own [`KvStats`] with *logical* (single-node)
//! semantics: one `multi_get` however many shards it touches, one scan
//! per logical range. Per-shard physical sub-operations land in each
//! shard's own stats; [`FanoutStats`] counts the scatter itself. The
//! serving-equivalence suite asserts the router's logical counters match
//! a single-node store running the same plan exactly.
//!
//! Cross-shard fan-outs run their per-shard sub-operations on scoped
//! threads, so a latency-charging shard stack (e.g. [`LatencyKv`]
//! wrapping each shard) charges the *maximum* shard latency per batch,
//! not the sum — the fix for the router double-charging per underlying
//! op when fanned out serially.
//!
//! [`LatencyKv`]: crate::latency::LatencyKv

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use dgf_common::fault::FaultPlan;
use dgf_common::{DgfError, Result};

use crate::traits::{KvPair, KvStats, KvStore};

/// One per-shard unit of work in a cross-shard fan-out: a boxed closure
/// handed to [`ShardedKv::scatter`] together with its shard index.
type ShardJob<'a, T> = Box<dyn FnOnce(&dyn KvStore) -> Result<T> + Send + 'a>;

/// Scatter-level counters for a [`ShardedKv`] (the logical op counters
/// live in the router's [`KvStats`]).
#[derive(Debug, Default)]
pub struct FanoutStats {
    /// `multi_get` batches that straddled at least two shards.
    pub cross_shard_multi_gets: AtomicU64,
    /// Range scans that straddled at least two shards.
    pub cross_shard_scans: AtomicU64,
    /// Per-shard sub-operations issued by cross-shard fan-outs.
    pub shard_subops: AtomicU64,
}

impl FanoutStats {
    /// Current counter values as plain integers.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.cross_shard_multi_gets.load(Ordering::Relaxed),
            self.cross_shard_scans.load(Ordering::Relaxed),
            self.shard_subops.load(Ordering::Relaxed),
        )
    }
}

/// A [`KvStore`] that range-partitions the keyspace across inner shards.
pub struct ShardedKv {
    shards: Vec<Arc<dyn KvStore>>,
    /// Sorted split keys, `len() == shards.len() - 1`. Shard `i` owns
    /// `[boundaries[i-1], boundaries[i])`, with the first shard open
    /// below and the last open above.
    boundaries: Vec<Vec<u8>>,
    gate: RwLock<()>,
    stats: KvStats,
    fanout: FanoutStats,
    fault: Option<Arc<FaultPlan>>,
}

impl ShardedKv {
    /// Build a router over `shards` split at `boundaries` (must be
    /// strictly increasing, exactly one fewer than the shard count).
    pub fn new(shards: Vec<Arc<dyn KvStore>>, boundaries: Vec<Vec<u8>>) -> Result<ShardedKv> {
        if shards.is_empty() {
            return Err(DgfError::KvStore("sharded router needs >= 1 shard".into()));
        }
        if boundaries.len() + 1 != shards.len() {
            return Err(DgfError::KvStore(format!(
                "{} shards need {} boundaries, got {}",
                shards.len(),
                shards.len() - 1,
                boundaries.len()
            )));
        }
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DgfError::KvStore(
                "shard boundaries must be strictly increasing".into(),
            ));
        }
        Ok(ShardedKv {
            shards,
            boundaries,
            gate: RwLock::new(()),
            stats: KvStats::default(),
            fanout: FanoutStats::default(),
            fault: None,
        })
    }

    /// Attach a fault plan whose `sync_point`s fire around cross-shard
    /// fan-outs (`serve.router.scatter` / `.fetch` / `.merge`), so the
    /// interleaving harness can pause the router mid-scatter by seed.
    pub fn with_fault(mut self, fault: Arc<FaultPlan>) -> ShardedKv {
        self.fault = Some(fault);
        self
    }

    /// The inner shards, in key order.
    pub fn shards(&self) -> &[Arc<dyn KvStore>] {
        &self.shards
    }

    /// The split keys between shards.
    pub fn boundaries(&self) -> &[Vec<u8>] {
        &self.boundaries
    }

    /// Scatter counters.
    pub fn fanout(&self) -> &FanoutStats {
        &self.fanout
    }

    /// Which shard owns `key`: the number of boundaries at or below it.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    fn sync(&self, site: &str) {
        if let Some(f) = &self.fault {
            f.sync_point(site);
        }
    }

    /// Clip `[start, end)` to each shard's range, returning the shards
    /// with a non-empty sub-range in key order.
    fn sub_ranges(&self, start: &[u8], end: &[u8]) -> Vec<(usize, Vec<u8>, Vec<u8>)> {
        if start >= end {
            return Vec::new();
        }
        let lo = self.shard_of(start);
        let hi = self.shard_of(end);
        (lo..=hi.min(self.shards.len() - 1))
            .filter_map(|s| {
                let s_lo = if s == 0 { &[][..] } else { &self.boundaries[s - 1] };
                let sub_start = start.max(s_lo).to_vec();
                let sub_end = match self.boundaries.get(s) {
                    Some(b) => end.min(b.as_slice()).to_vec(),
                    None => end.to_vec(),
                };
                (sub_start < sub_end).then_some((s, sub_start, sub_end))
            })
            .collect()
    }

    /// Run one closure per involved shard on scoped threads, returning
    /// results in the given (key) order. Shard latency overlaps instead
    /// of accumulating, and the first error in shard order wins.
    fn scatter<T: Send>(&self, jobs: Vec<(usize, ShardJob<'_, T>)>) -> Result<Vec<T>> {
        self.fanout
            .shard_subops
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let results: Vec<Result<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(shard, job)| {
                    let store = &self.shards[shard];
                    scope.spawn(move || {
                        self.sync("serve.router.fetch");
                        job(store.as_ref())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard fan-out worker panicked"))
                .collect()
        });
        self.sync("serve.router.merge");
        results.into_iter().collect()
    }
}

impl KvStore for ShardedKv {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let _shared = self.gate.read();
        self.stats.on_put((key.len() + value.len()) as u64);
        self.shards[self.shard_of(key)].put(key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let got = self.shards[self.shard_of(key)].get(key)?;
        self.stats.on_get(got.as_ref().map_or(0, |v| v.len() as u64));
        Ok(got)
    }

    fn delete(&self, key: &[u8]) -> Result<bool> {
        let _shared = self.gate.read();
        self.shards[self.shard_of(key)].delete(key)
    }

    fn scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>> {
        let ranges = self.sub_ranges(start, end);
        let out: Vec<KvPair> = match ranges.len() {
            0 => Vec::new(),
            // One shard owns the whole range: its own scan is atomic.
            1 => {
                let (s, lo, hi) = &ranges[0];
                self.shards[*s].scan_range(lo, hi)?
            }
            _ => {
                self.fanout.cross_shard_scans.fetch_add(1, Ordering::Relaxed);
                self.sync("serve.router.scatter");
                let _excl = self.gate.write();
                let jobs: Vec<(usize, ShardJob<'_, Vec<KvPair>>)> = ranges
                    .into_iter()
                    .map(|(s, lo, hi)| {
                        let job: ShardJob<'_, Vec<KvPair>> =
                            Box::new(move |kv| kv.scan_range(&lo, &hi));
                        (s, job)
                    })
                    .collect();
                // Shards are disjoint and ordered, so concatenating the
                // per-shard results in shard order IS key order.
                self.scatter(jobs)?.into_iter().flatten().collect()
            }
        };
        self.stats
            .on_scan(out.iter().map(|(_, v)| v.len() as u64).sum());
        Ok(out)
    }

    fn update(&self, key: &[u8], f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>) -> Result<()> {
        let _shared = self.gate.read();
        let mut written = 0u64;
        self.shards[self.shard_of(key)].update(key, &mut |old| {
            let new = f(old);
            written = (key.len() + new.len()) as u64;
            new
        })?;
        self.stats.on_put(written);
        Ok(())
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // Group the batch per shard, remembering each key's slot.
        let mut per_shard: Vec<(Vec<usize>, Vec<Vec<u8>>)> =
            vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            let s = self.shard_of(key);
            per_shard[s].0.push(i);
            per_shard[s].1.push(key.clone());
        }
        let involved: Vec<usize> = (0..self.shards.len())
            .filter(|s| !per_shard[*s].0.is_empty())
            .collect();
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        if involved.len() == 1 {
            let s = involved[0];
            let (slots, sub_keys) = &per_shard[s];
            let got = self.shards[s].multi_get(sub_keys)?;
            for (slot, v) in slots.iter().zip(got) {
                out[*slot] = v;
            }
        } else {
            self.fanout
                .cross_shard_multi_gets
                .fetch_add(1, Ordering::Relaxed);
            self.sync("serve.router.scatter");
            // Exclusive gate: no routed writer can land between the
            // per-shard sub-batches, so the union is one snapshot.
            let _excl = self.gate.write();
            let jobs: Vec<_> = involved
                .iter()
                .map(|&s| {
                    let sub_keys = per_shard[s].1.clone();
                    let job: ShardJob<'_, Vec<Option<Vec<u8>>>> =
                        Box::new(move |kv| kv.multi_get(&sub_keys));
                    (s, job)
                })
                .collect();
            let got = self.scatter(jobs)?;
            for (&s, values) in involved.iter().zip(got) {
                for (slot, v) in per_shard[s].0.iter().zip(values) {
                    out[*slot] = v;
                }
            }
        }
        let bytes = out.iter().flatten().map(|v| v.len() as u64).sum::<u64>();
        self.stats.on_multi_get(keys.len() as u64, bytes);
        Ok(out)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn logical_size_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.logical_size_bytes()).sum()
    }

    fn flush(&self) -> Result<()> {
        for s in &self.shards {
            s.flush()?;
        }
        Ok(())
    }

    fn maintain(&self) -> Result<u64> {
        let mut reclaimed = 0;
        for s in &self.shards {
            reclaimed += s.maintain()?;
        }
        Ok(reclaimed)
    }

    fn stats(&self) -> &KvStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemKvStore;

    fn router(n: usize, boundaries: &[&[u8]]) -> ShardedKv {
        let shards: Vec<Arc<dyn KvStore>> =
            (0..n).map(|_| Arc::new(MemKvStore::new()) as Arc<dyn KvStore>).collect();
        ShardedKv::new(shards, boundaries.iter().map(|b| b.to_vec()).collect()).unwrap()
    }

    #[test]
    fn rejects_malformed_boundaries() {
        let shards = |n: usize| -> Vec<Arc<dyn KvStore>> {
            (0..n).map(|_| Arc::new(MemKvStore::new()) as Arc<dyn KvStore>).collect()
        };
        assert!(ShardedKv::new(shards(0), vec![]).is_err());
        assert!(ShardedKv::new(shards(2), vec![]).is_err());
        assert!(ShardedKv::new(shards(3), vec![b"m".to_vec(), b"g".to_vec()]).is_err());
        assert!(ShardedKv::new(shards(3), vec![b"g".to_vec(), b"g".to_vec()]).is_err());
        assert!(ShardedKv::new(shards(1), vec![]).is_ok());
    }

    #[test]
    fn routes_by_boundary() {
        let kv = router(3, &[b"g", b"m"]);
        assert_eq!(kv.shard_of(b"a"), 0);
        assert_eq!(kv.shard_of(b"fzz"), 0);
        assert_eq!(kv.shard_of(b"g"), 1); // boundary key belongs to the upper shard
        assert_eq!(kv.shard_of(b"h"), 1);
        assert_eq!(kv.shard_of(b"m"), 2);
        assert_eq!(kv.shard_of(b"zzz"), 2);
        kv.put(b"a", b"1").unwrap();
        kv.put(b"g", b"2").unwrap();
        kv.put(b"z", b"3").unwrap();
        assert_eq!(kv.shards()[0].len(), 1);
        assert_eq!(kv.shards()[1].len(), 1);
        assert_eq!(kv.shards()[2].len(), 1);
        assert_eq!(kv.get(b"g").unwrap().unwrap(), b"2");
        assert!(kv.delete(b"g").unwrap());
        assert_eq!(kv.shards()[1].len(), 0);
    }

    #[test]
    fn empty_shard_is_transparent() {
        // Shard 1 owns ["g","m") but never receives a key: scans and
        // batches across the hole behave as if it were not there.
        let kv = router(3, &[b"g", b"m"]);
        kv.put(b"a", b"1").unwrap();
        kv.put(b"z", b"2").unwrap();
        assert_eq!(kv.shards()[1].len(), 0);
        assert_eq!(kv.len(), 2);
        let got = kv.scan_range(b"a", b"zz").unwrap();
        assert_eq!(
            got.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
            vec![b"a".as_slice(), b"z".as_slice()]
        );
        let got = kv.multi_get(&[b"a".to_vec(), b"h".to_vec(), b"z".to_vec()]).unwrap();
        assert_eq!(got[0].as_deref(), Some(b"1".as_slice()));
        assert!(got[1].is_none());
        assert_eq!(got[2].as_deref(), Some(b"2".as_slice()));
    }

    #[test]
    fn all_keys_on_one_shard() {
        let kv = router(4, &[b"x1", b"x2", b"x3"]);
        for i in 0..10u8 {
            kv.put(&[b'a', i], &[i]).unwrap();
        }
        assert_eq!(kv.shards()[0].len(), 10);
        assert!(kv.shards()[1..].iter().all(|s| s.is_empty()));
        // Single-shard batch: delegated whole, counted once.
        let keys: Vec<Vec<u8>> = (0..10u8).map(|i| vec![b'a', i]).collect();
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(|v| v.is_some()));
        assert_eq!(kv.fanout().snapshot(), (0, 0, 0));
        assert_eq!(kv.scan_range(b"a", b"b").unwrap().len(), 10);
        assert_eq!(kv.stats().snapshot().scans, 1);
    }

    #[test]
    fn scan_spanning_boundary_is_ordered_and_counted_once() {
        let kv = router(3, &[b"d", b"h"]);
        for k in [&b"a"[..], b"c", b"d", b"e", b"h", b"j"] {
            kv.put(k, k).unwrap();
        }
        let before = kv.stats().snapshot();
        let got = kv.scan_range(b"b", b"i").unwrap();
        assert_eq!(
            got.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
            vec![b"c".as_slice(), b"d", b"e", b"h"]
        );
        let since = kv.stats().snapshot().since(&before);
        assert_eq!(since.scans, 1, "one logical scan however many shards");
        assert_eq!(since.bytes_read, 4);
        let (_, cross_scans, subops) = kv.fanout().snapshot();
        assert_eq!(cross_scans, 1);
        assert_eq!(subops, 3);
    }

    #[test]
    fn multi_get_straddling_shards_preserves_order_and_counters() {
        let kv = router(3, &[b"d", b"h"]);
        kv.put(b"a", b"1").unwrap();
        kv.put(b"e", b"2").unwrap();
        kv.put(b"z", b"3").unwrap();
        let before = kv.stats().snapshot();
        let got = kv
            .multi_get(&[b"z".to_vec(), b"missing".to_vec(), b"a".to_vec(), b"e".to_vec()])
            .unwrap();
        assert_eq!(got[0].as_deref(), Some(b"3".as_slice()));
        assert!(got[1].is_none());
        assert_eq!(got[2].as_deref(), Some(b"1".as_slice()));
        assert_eq!(got[3].as_deref(), Some(b"2".as_slice()));
        let since = kv.stats().snapshot().since(&before);
        assert_eq!(since.multi_gets, 1, "one logical batch");
        assert_eq!(since.multi_get_keys, 4);
        assert_eq!(since.gets, 0);
        assert!(kv.multi_get(&[]).unwrap().is_empty());
        assert_eq!(kv.stats().snapshot().since(&before).multi_gets, 1);
    }

    #[test]
    fn logical_counters_match_single_node_for_same_ops() {
        // The same operation sequence against a single MemKvStore and a
        // 3-way router must produce byte-identical logical KvStats.
        let single = MemKvStore::new();
        let sharded = router(3, &[b"d", b"h"]);
        let ops = |kv: &dyn KvStore| {
            for k in [&b"a"[..], b"c", b"d", b"e", b"h", b"j"] {
                kv.put(k, b"val").unwrap();
            }
            kv.update(b"e", &mut |old| {
                let mut v = old.unwrap().to_vec();
                v.push(b'!');
                v
            })
            .unwrap();
            kv.get(b"c").unwrap();
            kv.get(b"nope").unwrap();
            kv.scan_range(b"a", b"z").unwrap();
            kv.scan_prefix(b"a").unwrap();
            kv.multi_get(&[b"a".to_vec(), b"e".to_vec(), b"j".to_vec()]).unwrap();
        };
        ops(&single);
        ops(&sharded);
        assert_eq!(single.stats().snapshot(), sharded.stats().snapshot());
    }

    #[test]
    fn cross_shard_multi_get_is_a_snapshot_under_routed_writes() {
        // The mem.rs torn-batch test, with x and y deliberately placed
        // on different shards: without the router's gate, shard 0 could
        // serve x before a flip and shard 1 serve y after it.
        let kv = Arc::new(router(2, &[b"m"]));
        kv.put(b"a_x", b"0").unwrap();
        kv.put(b"z_y", b"0").unwrap();
        assert_ne!(kv.shard_of(b"a_x"), kv.shard_of(b"z_y"));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let kv = Arc::clone(&kv);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = round.to_string().into_bytes();
                    kv.update(b"a_x", &mut |_| v.clone()).unwrap();
                    kv.update(b"z_y", &mut |_| v.clone()).unwrap();
                    round += 1;
                }
            })
        };
        for _ in 0..1000 {
            let got = kv.multi_get(&[b"a_x".to_vec(), b"z_y".to_vec()]).unwrap();
            let x: u64 = String::from_utf8(got[0].clone().unwrap()).unwrap().parse().unwrap();
            let y: u64 = String::from_utf8(got[1].clone().unwrap()).unwrap().parse().unwrap();
            assert!(x == y || x == y + 1, "torn cross-shard multi_get: x={x} y={y}");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn cross_shard_scan_is_a_snapshot_under_routed_writes() {
        let kv = Arc::new(router(2, &[b"m"]));
        kv.put(b"a", b"0").unwrap();
        kv.put(b"z", b"0").unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let kv = Arc::clone(&kv);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = round.to_string().into_bytes();
                    kv.update(b"a", &mut |_| v.clone()).unwrap();
                    kv.update(b"z", &mut |_| v.clone()).unwrap();
                    round += 1;
                }
            })
        };
        for _ in 0..500 {
            let got = kv.scan_range(b"a", b"zz").unwrap();
            assert_eq!(got.len(), 2);
            let x: u64 = String::from_utf8(got[0].1.clone()).unwrap().parse().unwrap();
            let y: u64 = String::from_utf8(got[1].1.clone()).unwrap().parse().unwrap();
            assert!(x == y || x == y + 1, "torn cross-shard scan: x={x} y={y}");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn shard_error_propagates_from_fanout() {
        use crate::chaos::ChaosKv;
        use dgf_common::fault::{FaultConfig, FaultPlan};
        // Shard 1 is crashed (sticky): a cross-shard scan must error
        // cleanly, never return the surviving shards' half.
        let dead = ChaosKv::new(
            Arc::new(MemKvStore::new()),
            Arc::new(FaultPlan::new(FaultConfig::crash_after_writes(1, 1))),
        );
        assert!(dead.put(b"x", b"x").is_err()); // trips the crash trigger
        let shards: Vec<Arc<dyn KvStore>> = vec![
            Arc::new(MemKvStore::new()),
            Arc::new(dead),
        ];
        let kv = ShardedKv::new(shards, vec![b"m".to_vec()]).unwrap();
        kv.put(b"a", b"1").unwrap();
        assert!(kv.scan_range(b"a", b"zz").is_err());
        assert!(kv.multi_get(&[b"a".to_vec(), b"z".to_vec()]).is_err());
        // The healthy shard alone still serves.
        assert_eq!(kv.scan_range(b"a", b"b").unwrap().len(), 1);
    }
}
