//! # dgf-kvstore
//!
//! The key-value store substrate standing in for HBase (the paper stores
//! `GFUKey → GFUValue` pairs there; §4.1 notes Cassandra or Voldemort work
//! equally well, so the index programs against the [`KvStore`] trait).
//!
//! * [`MemKvStore`] — ordered, thread-safe, in-memory.
//! * [`LogKvStore`] — persistent single-file log with checksums, torn-tail
//!   recovery, and compaction.
//! * [`LatencyKv`] — a decorator charging simulated RPC latency so benches
//!   can reproduce the index-read-time trends of Figures 12–13.
//! * [`ChaosKv`] — a decorator injecting deterministic faults from a
//!   seeded [`FaultPlan`](dgf_common::fault::FaultPlan), for the chaos
//!   test suite.
//! * [`ShardedKv`] — a range-partitioned router spreading the keyspace
//!   across N inner shards, the in-process stand-in for a fleet of
//!   region servers (serving tier, DESIGN.md §13).

#![warn(missing_docs)]

pub mod chaos;
pub mod latency;
pub mod log;
pub mod mem;
pub mod shard;
pub mod traits;

pub use chaos::ChaosKv;
pub use latency::{LatencyKv, LatencyModel};
pub use log::{LogKvConfig, LogKvStore};
pub use mem::MemKvStore;
pub use shard::{FanoutStats, ShardedKv};
pub use traits::{prefix_upper_bound, KvPair, KvRef, KvStats, KvStatsSnapshot, KvStore};

#[cfg(test)]
mod proptests {
    use super::*;
    use dgf_common::TempDir;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    enum Op {
        Put(Vec<u8>, Vec<u8>),
        Delete(Vec<u8>),
        Scan(Vec<u8>, Vec<u8>),
    }

    fn arb_key() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..8, 1..4)
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (arb_key(), prop::collection::vec(any::<u8>(), 0..8))
                .prop_map(|(k, v)| Op::Put(k, v)),
            arb_key().prop_map(Op::Delete),
            (arb_key(), arb_key()).prop_map(|(a, b)| {
                if a <= b {
                    Op::Scan(a, b)
                } else {
                    Op::Scan(b, a)
                }
            }),
        ]
    }

    fn check_against_model(kv: &dyn KvStore, ops: &[Op]) {
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    kv.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    let existed = kv.delete(k).unwrap();
                    assert_eq!(existed, model.remove(k).is_some());
                }
                Op::Scan(a, b) => {
                    let got = kv.scan_range(a, b).unwrap();
                    let want: Vec<_> = model
                        .range(a.clone()..b.clone())
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    assert_eq!(got, want);
                }
            }
        }
        assert_eq!(kv.len(), model.len());
        for (k, v) in &model {
            assert_eq!(kv.get(k).unwrap().as_deref(), Some(v.as_slice()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mem_store_matches_btreemap(ops in prop::collection::vec(arb_op(), 0..64)) {
            check_against_model(&MemKvStore::new(), &ops);
        }

        #[test]
        fn sharded_store_matches_btreemap(ops in prop::collection::vec(arb_op(), 0..64)) {
            // 3-way router split inside the generated key domain: the
            // router must be observationally identical to one store.
            let shards: Vec<std::sync::Arc<dyn KvStore>> = (0..3)
                .map(|_| std::sync::Arc::new(MemKvStore::new()) as std::sync::Arc<dyn KvStore>)
                .collect();
            let kv = ShardedKv::new(shards, vec![vec![2], vec![5]]).unwrap();
            check_against_model(&kv, &ops);
        }

        #[test]
        fn log_store_matches_btreemap(ops in prop::collection::vec(arb_op(), 0..64)) {
            let t = TempDir::new("kv-prop").unwrap();
            let kv = LogKvStore::open(t.path().join("kv.log")).unwrap();
            check_against_model(&kv, &ops);
        }

        #[test]
        fn log_store_survives_reopen(ops in prop::collection::vec(arb_op(), 0..64)) {
            let t = TempDir::new("kv-prop").unwrap();
            let path = t.path().join("kv.log");
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            {
                let kv = LogKvStore::open(&path).unwrap();
                for op in &ops {
                    match op {
                        Op::Put(k, v) => {
                            kv.put(k, v).unwrap();
                            model.insert(k.clone(), v.clone());
                        }
                        Op::Delete(k) => {
                            kv.delete(k).unwrap();
                            model.remove(k);
                        }
                        Op::Scan(..) => {}
                    }
                }
                kv.flush().unwrap();
            }
            let kv = LogKvStore::open(&path).unwrap();
            prop_assert_eq!(kv.len(), model.len());
            for (k, v) in &model {
                let got = kv.get(k).unwrap();
                prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
            }
        }
    }
}
