//! A latency-injecting decorator.
//!
//! The paper's DGFIndex talks to HBase over the network; every GFU lookup
//! pays an RPC round trip. [`LatencyKv`] wraps any [`KvStore`] and charges a
//! configurable delay per operation so benchmarks can expose the paper's
//! observation that *smaller interval sizes mean more GFUs per query and
//! therefore longer index-read time* (§5.3.3, Figures 12–13).

use std::time::Duration;

use dgf_common::Result;

use crate::traits::{KvPair, KvStats, KvStore};

/// Per-operation latency model.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Charged once per `get`/`put`/`delete`/`update`.
    pub per_op: Duration,
    /// Charged once per scan, plus `per_entry` per returned pair.
    pub per_scan: Duration,
    /// Charged per pair returned by a scan or `multi_get`.
    pub per_entry: Duration,
}

impl LatencyModel {
    /// No added latency.
    pub const ZERO: LatencyModel = LatencyModel {
        per_op: Duration::ZERO,
        per_scan: Duration::ZERO,
        per_entry: Duration::ZERO,
    };

    /// A rough local-network HBase profile: ~200 µs per RPC, ~1 µs per
    /// scanned entry.
    pub fn hbase_like() -> LatencyModel {
        LatencyModel {
            per_op: Duration::from_micros(200),
            per_scan: Duration::from_micros(400),
            per_entry: Duration::from_micros(1),
        }
    }
}

/// A [`KvStore`] decorator adding simulated RPC latency.
pub struct LatencyKv<S> {
    inner: S,
    model: LatencyModel,
}

impl<S: KvStore> LatencyKv<S> {
    /// Wrap `inner` with the given latency model.
    pub fn new(inner: S, model: LatencyModel) -> Self {
        LatencyKv { inner, model }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn charge(&self, d: Duration) {
        if !d.is_zero() {
            spin_wait(d);
        }
    }
}

/// Wait out a simulated latency charge. RPC latency is I/O wait, not
/// CPU burn: RPC-sized charges block in the kernel so concurrent
/// waiters overlap — on any core count — exactly like real in-flight
/// RPCs (the serving tier's scatter-gather speedup depends on this).
/// Kernel timer slack pads a sleep by some tens of microseconds, which
/// would swamp the ~1 µs per-entry transfer charges, so sub-floor
/// charges busy-wait instead: precise, and too short to matter for
/// scheduling.
fn spin_wait(d: Duration) {
    const SLEEP_FLOOR: Duration = Duration::from_micros(50);
    if d >= SLEEP_FLOOR {
        std::thread::sleep(d);
        return;
    }
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

impl<S: KvStore> KvStore for LatencyKv<S> {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.charge(self.model.per_op);
        self.inner.put(key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.charge(self.model.per_op);
        self.inner.get(key)
    }

    fn delete(&self, key: &[u8]) -> Result<bool> {
        self.charge(self.model.per_op);
        self.inner.delete(key)
    }

    fn scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>> {
        self.charge(self.model.per_scan);
        let out = self.inner.scan_range(start, end)?;
        self.charge(self.model.per_entry * out.len() as u32);
        Ok(out)
    }

    fn update(&self, key: &[u8], f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>) -> Result<()> {
        self.charge(self.model.per_op);
        self.inner.update(key, f)
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        // An empty batch is no RPC at all.
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // One batched RPC plus per-entry transfer, like an HBase multi-get.
        self.charge(self.model.per_op);
        self.charge(self.model.per_entry * keys.len() as u32);
        self.inner.multi_get(keys)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<KvPair>> {
        // Without this override the default trait implementation would
        // re-enter `self.scan_range`, so a prefix scan was charged through
        // a different code path than a range scan and bypassed any
        // `scan_prefix` specialization of the wrapped store. Charge it
        // exactly like a range scan and delegate to the inner store.
        self.charge(self.model.per_scan);
        let out = self.inner.scan_prefix(prefix)?;
        self.charge(self.model.per_entry * out.len() as u32);
        Ok(out)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn logical_size_bytes(&self) -> u64 {
        self.inner.logical_size_bytes()
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn maintain(&self) -> Result<u64> {
        self.inner.maintain()
    }

    fn stats(&self) -> &KvStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemKvStore;

    #[test]
    fn zero_model_is_transparent() {
        let kv = LatencyKv::new(MemKvStore::new(), LatencyModel::ZERO);
        kv.put(b"a", b"1").unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn latency_is_charged() {
        let model = LatencyModel {
            per_op: Duration::from_millis(2),
            per_scan: Duration::ZERO,
            per_entry: Duration::ZERO,
        };
        let kv = LatencyKv::new(MemKvStore::new(), model);
        let t = std::time::Instant::now();
        kv.put(b"a", b"1").unwrap();
        kv.get(b"a").unwrap();
        assert!(t.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn empty_multi_get_charges_nothing() {
        let model = LatencyModel {
            per_op: Duration::from_millis(5),
            per_scan: Duration::ZERO,
            per_entry: Duration::from_millis(5),
        };
        let kv = LatencyKv::new(MemKvStore::new(), model);
        let t = std::time::Instant::now();
        assert!(kv.multi_get(&[]).unwrap().is_empty());
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn multi_get_charges_one_op_plus_entries() {
        let model = LatencyModel {
            per_op: Duration::from_millis(2),
            per_scan: Duration::ZERO,
            per_entry: Duration::from_millis(1),
        };
        let kv = LatencyKv::new(MemKvStore::new(), model);
        kv.put(b"a", b"1").unwrap();
        let t = std::time::Instant::now();
        let got = kv
            .multi_get(&[b"a".to_vec(), b"b".to_vec(), b"c".to_vec()])
            .unwrap();
        assert_eq!(got.len(), 3);
        // 2 ms batch RPC + 3 × 1 ms per key; well under the 3 × 2 ms a
        // per-key loop would pay in per_op alone for larger models.
        assert!(t.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn scan_prefix_charges_like_scan_range() {
        let model = LatencyModel {
            per_op: Duration::ZERO,
            per_scan: Duration::from_millis(2),
            per_entry: Duration::from_millis(1),
        };
        let kv = LatencyKv::new(MemKvStore::new(), model);
        kv.put(b"row/1", b"x").unwrap();
        kv.put(b"row/2", b"y").unwrap();
        kv.put(b"other", b"z").unwrap();

        let t = std::time::Instant::now();
        let via_prefix = kv.scan_prefix(b"row/").unwrap();
        let prefix_elapsed = t.elapsed();
        assert_eq!(via_prefix.len(), 2);
        // per_scan + 2 × per_entry, same bill as the equivalent scan_range.
        assert!(prefix_elapsed >= Duration::from_millis(4));

        let t = std::time::Instant::now();
        let via_range = kv.scan_range(b"row/", b"row0").unwrap();
        assert_eq!(via_range, via_prefix);
        assert!(t.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn scan_charges_per_entry() {
        let model = LatencyModel {
            per_op: Duration::ZERO,
            per_scan: Duration::ZERO,
            per_entry: Duration::from_millis(1),
        };
        let kv = LatencyKv::new(MemKvStore::new(), model);
        for i in 0..5u8 {
            kv.put(&[i], b"v").unwrap();
        }
        let t = std::time::Instant::now();
        let got = kv.scan_range(&[0], &[10]).unwrap();
        assert_eq!(got.len(), 5);
        assert!(t.elapsed() >= Duration::from_millis(5));
    }
}
