//! # dgfindex
//!
//! A from-scratch Rust reproduction of **“DGFIndex for Smart Grid:
//! Enhancing Hive with a Cost-Effective Multidimensional Range Index”**
//! (Liu et al., VLDB 2014): the DGFIndex grid-file index with pre-computed
//! per-cell aggregation headers, plus every substrate it needs — a
//! simulated HDFS, a MapReduce engine, Hive-style file formats and
//! baseline indexes (Compact / Aggregate / Bitmap), a key-value store
//! standing in for HBase, a HadoopDB-style comparator, and workload
//! generators for the paper's smart-meter and TPC-H evaluations.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names and carries the runnable examples and cross-crate integration
//! tests.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use dgfindex::prelude::*;
//!
//! # fn main() -> dgfindex::common::Result<()> {
//! // A simulated cluster and warehouse.
//! let tmp = TempDir::new("readme")?;
//! let hdfs = SimHdfs::open(tmp.path())?;
//! let ctx = HiveContext::new(hdfs, MrEngine::new(2));
//!
//! // A tiny table (the paper's Figure 5 example).
//! let schema = Arc::new(Schema::from_pairs(&[
//!     ("A", ValueType::Int),
//!     ("B", ValueType::Int),
//!     ("C", ValueType::Float),
//! ]));
//! let table = ctx.create_table("fig5", schema, FileFormat::Text)?;
//! ctx.load_rows(&table, &dgfindex::core::index::paper_figure5_rows(), 1)?;
//!
//! // Build a DGFIndex with the paper's splitting policy, pre-computing sum(C).
//! let (index, _report) = DgfIndex::build(
//!     Arc::clone(&ctx),
//!     table,
//!     dgfindex::core::index::paper_figure5_policy(),
//!     vec![AggFunc::Sum("C".into())],
//!     Arc::new(MemKvStore::new()),
//!     "dgf_fig5",
//! )?;
//!
//! // The paper's Listing 2 query.
//! let run = DgfEngine::new(Arc::new(index)).run(&Query::Aggregate {
//!     aggs: vec![AggFunc::Sum("C".into())],
//!     predicate: Predicate::all()
//!         .and("A", ColumnRange::half_open(Value::Int(5), Value::Int(12)))
//!         .and("B", ColumnRange::half_open(Value::Int(12), Value::Int(16))),
//! })?;
//! assert_eq!(run.result.into_scalars(), vec![Value::Float(2.2)]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use dgf_common as common;
pub use dgf_core as core;
pub use dgf_format as format;
pub use dgf_hadoopdb as hadoopdb;
pub use dgf_hive as hive;
pub use dgf_ingest as ingest;
pub use dgf_kvstore as kvstore;
pub use dgf_mapreduce as mapreduce;
pub use dgf_query as query;
pub use dgf_rdbms as rdbms;
pub use dgf_serve as serve;
pub use dgf_storage as storage;
pub use dgf_workload as workload;

/// The most commonly used types, importable with one `use`.
pub mod prelude {
    pub use dgf_common::{
        format_date, parse_date, Row, Schema, SchemaRef, TempDir, Value, ValueType,
    };
    pub use dgf_common::{FaultConfig, FaultPlan, RetryPolicy};
    pub use dgf_core::{
        DgfEngine, DgfIndex, DimPolicy, Extents, GfuKey, GfuValue, IndexOptions, PlanStrategy,
        SliceLoc, SplittingPolicy,
    };
    pub use dgf_format::FileFormat;
    pub use dgf_hive::{
        AggregateIndex, AggregateIndexEngine, BitmapEngine, BitmapIndex, CompactEngine,
        CompactIndex, HiveContext, PartitionEngine, PartitionedTable, ScanEngine, ScanOptions,
        TableRef,
    };
    pub use dgf_ingest::{IngestConfig, StreamIngestor};
    pub use dgf_hive::ServeOptions;
    pub use dgf_kvstore::{
        ChaosKv, FanoutStats, KvStore, LatencyKv, LatencyModel, LogKvStore, MemKvStore, ShardedKv,
    };
    pub use dgf_mapreduce::MrEngine;
    pub use dgf_serve::{
        mirror_kv, shard_boundaries, sharded_mem, BatchingKv, ServeFrontend, ServeReport,
    };
    pub use dgf_query::{
        AggFunc, ColumnRange, Engine, EngineRun, Predicate, Query, QueryResult, RunStats,
    };
    pub use dgf_storage::{HdfsConfig, SimHdfs};
}
