//! `dgf` — a command-line warehouse driven by DGFIndex.
//!
//! A persistent single-directory warehouse: tables live as files under
//! the directory (the simulated HDFS root), the catalog at
//! `/warehouse/_catalog`, and each index's GFU store as a crash-safe log
//! under `.dgf-kv/`. Every invocation reopens the warehouse cold — the
//! tool demonstrates that the whole system state (tables, indexes,
//! extents, pre-computed headers) survives restarts.
//!
//! ```text
//! dgf init <dir>
//! dgf tables <dir>
//! dgf create-table <dir> <name> --schema "user_id:int,ts:date,power:float" [--format text|rcfile]
//! dgf load <dir> <table> <file>            # '|'-delimited rows
//! dgf gen-meter <dir> <table> --users N --days N [--seed N]
//! dgf index <dir> <name> --table <t> --dims "user_id:0:100,ts:2012-12-01:1" \
//!           [--precompute "sum(power_consumed), count(*)"]
//! dgf append <dir> <index> <file>          # index + base table extend
//! dgf ingest <dir> <index> <file> [--batch N] [--flush]
//! dgf query <dir> <table> "SELECT sum(power_consumed) WHERE ..." [--index <name>] [--explain]
//! dgf profile <dir> <table> "SELECT ..." [--index <name>] [--json]
//! dgf serve <dir> <index> "SELECT ..." [--shards N] [--clients C] [--queries Q]
//! dgf advise <dir> <table> --dims "user_id,ts" --history "u>1 AND ...; ts='2012-12-05'"
//! ```
//!
//! `profile` runs a query with span collection forced on and renders the
//! per-stage tree (wall time, KV ops, bytes, cache hits, retries) plus a
//! metrics-registry dump; `query` honours the `DGF_TRACE` env filter
//! instead (e.g. `DGF_TRACE=plan,kv`).
//!
//! `ingest` streams rows through the WAL-backed memtable path instead of
//! running a reorganization job per batch: rows are acknowledged once
//! logged (WAL at `.dgf-kv/<index>.wal`) and become query-visible
//! immediately. Without `--flush` the rows stay in the WAL across
//! invocations — `query --index` and `profile --index` replay it on open,
//! so freshness survives restarts; `--flush` converts everything into
//! real Slices before exiting.
//!
//! `serve` stands up the scatter-gather serving tier (DESIGN.md §13)
//! over an existing index: the durable GFU log is mirrored into an
//! N-shard range-partitioned router, the query is fanned out from C
//! concurrent clients through admission control, and the answer plus a
//! QPS / p50 / p99 / scatter summary is printed. `--batch-window US`
//! turns on shared header-fetch batching across the concurrent clients.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;

use dgfindex::common::{parse_date, parse_row, DgfError, Result, Row, Schema, ValueType};
use dgfindex::core::advisor::{history_from_predicates, recommend_policy, AdvisorConfig};
use dgfindex::hive::IndexEntry;
use dgfindex::prelude::*;
use dgfindex::query::{parse_aggs, parse_predicate, parse_query};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        exit(2);
    }
    if let Err(e) = dispatch(&args) {
        eprintln!("error: {e}");
        exit(1);
    }
}

const USAGE: &str = "usage:
  dgf init <dir>
  dgf tables <dir>
  dgf create-table <dir> <name> --schema \"a:int,b:float\" [--format text|rcfile]
  dgf load <dir> <table> <file>
  dgf gen-meter <dir> <table> --users N --days N [--seed N]
  dgf index <dir> <name> --table <t> --dims \"col:min:interval,...\" [--precompute \"sum(x)\"]
  dgf append <dir> <index> <file>
  dgf ingest <dir> <index> <file> [--batch N] [--flush]
  dgf query <dir> <table> \"SELECT ... [WHERE ...] [GROUP BY col]\" [--index <name>] [--explain]
  dgf profile <dir> <table> \"SELECT ... [WHERE ...]\" [--index <name>] [--json]
  dgf serve <dir> <index> \"SELECT ...\" [--shards N] [--clients C] [--queries Q] [--batch-window US]
  dgf maintain <dir> <index> [--budget N] [--adapt] [--split-above N] [--merge-below N]
  dgf advise <dir> <table> --dims \"a,b\" --history \"pred; pred; ...\"";

/// A reopened warehouse: cluster + catalog.
struct Warehouse {
    dir: PathBuf,
    ctx: Arc<HiveContext>,
    indexes: Vec<IndexEntry>,
}

impl Warehouse {
    fn open(dir: &str) -> Result<Warehouse> {
        let dir = PathBuf::from(dir);
        if !dir.is_dir() {
            return Err(DgfError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{} is not a warehouse (run `dgf init`)", dir.display()),
            )));
        }
        let hdfs = SimHdfs::reopen(&dir, HdfsConfig::default())?;
        let (ctx, indexes) = HiveContext::load_catalog(hdfs, MrEngine::default())?;
        Ok(Warehouse { dir, ctx, indexes })
    }

    fn save(&self) -> Result<()> {
        self.ctx.save_catalog(&self.indexes)
    }

    fn kv_path(&self, index_name: &str) -> PathBuf {
        self.dir.join(".dgf-kv").join(format!("{index_name}.log"))
    }

    fn wal_path(&self, index_name: &str) -> PathBuf {
        self.dir.join(".dgf-kv").join(format!("{index_name}.wal"))
    }

    /// If the index has a streaming WAL on disk, replay it into a fresh
    /// source so queries see acknowledged-but-unflushed rows. The
    /// returned ingestor must stay alive for the duration of the query.
    fn attach_fresh(
        &self,
        index: &Arc<DgfIndex>,
        index_name: &str,
    ) -> Result<Option<StreamIngestor>> {
        let wal = self.wal_path(index_name);
        if !wal.is_file() {
            return Ok(None);
        }
        let ingestor = StreamIngestor::open(
            Arc::clone(index),
            wal,
            IngestConfig {
                // Read-only attach: never flush as a side effect of a query.
                flush_rows: u64::MAX,
                auto_flush_interval: None,
                ..IngestConfig::default()
            },
        )?;
        let s = ingestor.stats();
        if s.replayed_rows > 0 {
            eprintln!(
                "-- replayed {} unflushed rows ({} batches) from ingest WAL",
                s.replayed_rows, s.replayed_batches
            );
        }
        Ok(Some(ingestor))
    }

    fn open_index(&self, name: &str) -> Result<DgfIndex> {
        self.open_index_with_options(name, IndexOptions::default())
    }

    fn open_index_with_options(&self, name: &str, options: IndexOptions) -> Result<DgfIndex> {
        let kv: Arc<dyn KvStore> = Arc::new(LogKvStore::open(self.kv_path(name))?);
        self.open_index_on(name, kv, options)
    }

    /// Open the named index over an explicit store (the serving tier
    /// opens over a shard router instead of the durable log).
    fn open_index_on(
        &self,
        name: &str,
        kv: Arc<dyn KvStore>,
        options: IndexOptions,
    ) -> Result<DgfIndex> {
        let entry = self
            .indexes
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| DgfError::Index(format!("no such index {name:?}")))?;
        let base = self.ctx.table(&entry.base_table)?;
        let aggs = if entry.aggs_text.is_empty() {
            Vec::new()
        } else {
            parse_aggs(&entry.aggs_text, &base.schema)?
        };
        DgfIndex::open_with_options(Arc::clone(&self.ctx), base, kv, name, aggs, options)
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn dispatch(args: &[String]) -> Result<()> {
    let bad_usage = || DgfError::Query(USAGE.to_owned());
    match args[0].as_str() {
        "init" => {
            let dir = args.get(1).ok_or_else(bad_usage)?;
            std::fs::create_dir_all(dir)?;
            let hdfs = SimHdfs::open(dir)?;
            let ctx = HiveContext::new(hdfs, MrEngine::default());
            ctx.save_catalog(&[])?;
            println!("initialized warehouse at {dir}");
            Ok(())
        }
        "tables" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let mut tables = w.ctx.tables_snapshot();
            tables.sort_by(|a, b| a.name.cmp(&b.name));
            for t in tables {
                let size = w.ctx.table_size_bytes(&t);
                println!(
                    "table {:<24} {:<7} {:>12} bytes  {}",
                    t.name, t.format, size, t.schema
                );
            }
            for i in &w.indexes {
                println!(
                    "index {:<24} on {:<12} precompute: {}",
                    i.name,
                    i.base_table,
                    if i.aggs_text.is_empty() { "-" } else { &i.aggs_text }
                );
            }
            Ok(())
        }
        "create-table" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let name = args.get(2).ok_or_else(bad_usage)?;
            let schema = Schema::parse(flag(args, "--schema").ok_or_else(bad_usage)?)?;
            let format = match flag(args, "--format").unwrap_or("text") {
                "text" => FileFormat::Text,
                "rcfile" | "rc" => FileFormat::RcFile,
                other => return Err(DgfError::Query(format!("unknown format {other:?}"))),
            };
            w.ctx.create_table(name, Arc::new(schema), format)?;
            w.save()?;
            println!("created table {name}");
            Ok(())
        }
        "load" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let table = w.ctx.table(args.get(2).ok_or_else(bad_usage)?)?;
            let rows = read_rows_file(args.get(3).ok_or_else(bad_usage)?, &table.schema)?;
            let n = rows.len();
            let file_name = format!("load-{:05}", w.ctx.table_splits(&table).len());
            w.ctx.append_file(&table, &file_name, &rows)?;
            w.save()?;
            println!("loaded {n} rows into {}", table.name);
            if w.indexes.iter().any(|i| i.base_table == table.name) {
                println!(
                    "note: this table has a DGFIndex; use `dgf append` to keep it in sync"
                );
            }
            Ok(())
        }
        "gen-meter" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let name = args.get(2).ok_or_else(bad_usage)?;
            let users: u64 = flag(args, "--users").unwrap_or("1000").parse().unwrap_or(1000);
            let days: u64 = flag(args, "--days").unwrap_or("30").parse().unwrap_or(30);
            let seed: u64 = flag(args, "--seed").unwrap_or("42").parse().unwrap_or(42);
            let cfg = dgfindex::workload::MeterConfig {
                users,
                days,
                seed,
                ..dgfindex::workload::MeterConfig::default()
            };
            let rows = dgfindex::workload::generate_meter_data(&cfg);
            let table = w.ctx.create_table(
                name,
                dgfindex::workload::meter_schema(),
                FileFormat::Text,
            )?;
            w.ctx.load_rows(&table, &rows, 4)?;
            w.save()?;
            println!(
                "generated {} meter rows into {name} ({} users x {} days)",
                rows.len(),
                users,
                days
            );
            Ok(())
        }
        "index" => {
            let mut w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let name = args.get(2).ok_or_else(bad_usage)?.clone();
            let table = w.ctx.table(flag(args, "--table").ok_or_else(bad_usage)?)?;
            let policy = parse_dims_spec(
                flag(args, "--dims").ok_or_else(bad_usage)?,
                &table.schema,
            )?;
            let aggs_text = flag(args, "--precompute").unwrap_or("").to_owned();
            let aggs = if aggs_text.is_empty() {
                Vec::new()
            } else {
                parse_aggs(&aggs_text, &table.schema)?
            };
            std::fs::create_dir_all(w.dir.join(".dgf-kv"))?;
            let kv: Arc<dyn KvStore> = Arc::new(LogKvStore::open(w.kv_path(&name))?);
            let (_index, report) = DgfIndex::build(
                Arc::clone(&w.ctx),
                table.clone(),
                policy,
                aggs,
                kv,
                &name,
            )?;
            w.indexes.push(IndexEntry {
                name: name.clone(),
                base_table: table.name.clone(),
                aggs_text,
            });
            w.save()?;
            println!(
                "built index {name}: {} GFUs, {} bytes, in {:.2?}",
                report.index_entries, report.index_size_bytes, report.build_time
            );
            Ok(())
        }
        "append" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let index = w.open_index(args.get(2).ok_or_else(bad_usage)?)?;
            let rows = read_rows_file(args.get(3).ok_or_else(bad_usage)?, &index.base.schema)?;
            let n = rows.len();
            let report = index.append(&rows)?;
            w.save()?;
            println!(
                "appended {n} rows; index now holds {} GFUs ({:.2?})",
                report.index_entries, report.build_time
            );
            Ok(())
        }
        "ingest" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let index_name = args.get(2).ok_or_else(bad_usage)?;
            let index = Arc::new(w.open_index(index_name)?);
            let rows = read_rows_file(args.get(3).ok_or_else(bad_usage)?, &index.base.schema)?;
            let batch: usize = flag(args, "--batch")
                .unwrap_or("500")
                .parse()
                .map_err(|e| DgfError::Query(format!("bad --batch: {e}")))?;
            if batch == 0 {
                return Err(DgfError::Query("--batch must be positive".into()));
            }
            std::fs::create_dir_all(w.dir.join(".dgf-kv"))?;
            let ingestor = StreamIngestor::open(
                Arc::clone(&index),
                w.wal_path(index_name),
                IngestConfig {
                    auto_flush_interval: None,
                    ..IngestConfig::default()
                },
            )?;
            for chunk in rows.chunks(batch) {
                ingestor.ingest(chunk)?;
            }
            let flushed = args.iter().any(|a| a == "--flush");
            if flushed {
                ingestor.flush()?;
                w.save()?;
            }
            let s = ingestor.stats();
            println!(
                "ingested {} rows in {} batches ({} WAL bytes, {} syncs, {} flushes)",
                s.rows, s.batches, s.wal_bytes, s.wal_syncs, s.flushes
            );
            if !flushed {
                println!(
                    "rows are query-visible now and held in the WAL; \
                     rerun with --flush (or keep streaming) to persist them as Slices"
                );
            }
            Ok(())
        }
        "query" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let table = w.ctx.table(args.get(2).ok_or_else(bad_usage)?)?;
            let sql = args.get(3).ok_or_else(bad_usage)?;
            let query = parse_query(sql, &table.schema)?;
            let explain = args.iter().any(|a| a == "--explain");
            let run = match flag(args, "--index") {
                Some(index_name) => {
                    let index = Arc::new(w.open_index(index_name)?);
                    let _fresh = w.attach_fresh(&index, index_name)?;
                    if explain {
                        let plan = index.plan(&query, true)?;
                        println!(
                            "plan: {} inner GFUs (headers, {} records skipped), \
                             {} boundary GFUs, {}/{} splits",
                            plan.inner_gfus,
                            plan.inner_records,
                            plan.boundary_gfus,
                            plan.splits_read,
                            plan.splits_total
                        );
                    }
                    DgfEngine::new(index).run(&query)?
                }
                None => ScanEngine::new(Arc::clone(&w.ctx), table).run(&query)?,
            };
            print_result(&run);
            Ok(())
        }
        "profile" => {
            use dgfindex::common::obs::{record_io_snapshot, MetricsRegistry, Profiler};
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let table = w.ctx.table(args.get(2).ok_or_else(bad_usage)?)?;
            let sql = args.get(3).ok_or_else(bad_usage)?;
            let query = parse_query(sql, &table.schema)?;
            let as_json = args.iter().any(|a| a == "--json");
            let profiler = Profiler::enabled();
            let (run, registry) = match flag(args, "--index") {
                Some(index_name) => {
                    let index = Arc::new(w.open_index_with_options(
                        index_name,
                        IndexOptions {
                            profiler: profiler.clone(),
                            ..IndexOptions::default()
                        },
                    )?);
                    let _fresh = w.attach_fresh(&index, index_name)?;
                    let run = DgfEngine::new(Arc::clone(&index)).run(&query)?;
                    (run, index.metrics())
                }
                None => {
                    let before = w.ctx.hdfs.stats().snapshot();
                    let run = ScanEngine::new(Arc::clone(&w.ctx), table)
                        .with_profiler(profiler.clone())
                        .run(&query)?;
                    let reg = MetricsRegistry::new();
                    record_io_snapshot(&reg, &w.ctx.hdfs.stats().snapshot().since(&before));
                    run.stats.record_into(&reg);
                    (run, reg)
                }
            };
            if as_json {
                println!("{}", run.stats.profile.to_json());
                return Ok(());
            }
            print_result(&run);
            let scan = &run.stats.scan;
            if scan.batches > 0 || scan.rowwise_rows > 0 {
                eprintln!(
                    "\n== columnar scan ==\n\
                     {} batches, {} rows decoded, {} rows selected; \
                     decode {:.3} ms, kernels {:.3} ms; \
                     {} prefetch waits ({:.3} ms); {} row-wise rows",
                    scan.batches,
                    scan.rows_decoded,
                    scan.rows_selected,
                    scan.decode_us as f64 / 1000.0,
                    scan.kernel_us as f64 / 1000.0,
                    scan.prefetch_waits,
                    scan.prefetch_wait_us as f64 / 1000.0,
                    scan.rowwise_rows,
                );
            }
            // Stages recorded outside the query itself (index open,
            // crash recovery) accumulate in the root profiler.
            let open_profile = profiler.take_profile();
            if !open_profile.is_empty() {
                eprintln!("\n== open stages ==");
                eprint!("{}", open_profile.render());
            }
            eprintln!("\n== query stages ==");
            eprint!("{}", run.stats.profile.render());
            eprintln!("\n== metrics ==");
            eprint!("{}", registry.render());
            Ok(())
        }
        "serve" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let index_name = args.get(2).ok_or_else(bad_usage)?;
            let sql = args.get(3).ok_or_else(bad_usage)?;
            let parse_num = |name: &str, default: &str| -> Result<usize> {
                flag(args, name)
                    .unwrap_or(default)
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad {name}: {e}")))
            };
            let shards = parse_num("--shards", "4")?;
            let clients = parse_num("--clients", "4")?;
            let repeat = parse_num("--queries", "16")?;
            let window = parse_num("--batch-window", "0")? as u64;
            if shards == 0 || clients == 0 || repeat == 0 {
                return Err(DgfError::Query(
                    "--shards, --clients, and --queries must be positive".into(),
                ));
            }

            // Stand the serving tier up beside the durable log: mirror
            // the GFU store into an N-shard router split on the
            // odometer keyspace, then open a scatter-gather reader.
            let durable: Arc<dyn KvStore> = Arc::new(LogKvStore::open(w.kv_path(index_name))?);
            let extents = w
                .open_index_on(index_name, Arc::clone(&durable), IndexOptions::default())?
                .extents()?;
            let router = Arc::new(sharded_mem(&extents, shards)?);
            let pairs = mirror_kv(durable.as_ref(), router.as_ref())?;
            drop(durable);
            let store: Arc<dyn KvStore> = if window > 0 {
                // Shared header-fetch batching: concurrent queries join
                // one leader's batched multi_get within the window.
                Arc::new(BatchingKv::new(
                    Arc::clone(&router) as Arc<dyn KvStore>,
                    std::time::Duration::from_micros(window),
                ))
            } else {
                Arc::clone(&router) as Arc<dyn KvStore>
            };
            let index = Arc::new(w.open_index_on(
                index_name,
                store,
                IndexOptions {
                    fetch_parallelism: shards,
                    ..IndexOptions::default()
                },
            )?);
            let _fresh = w.attach_fresh(&index, index_name)?;

            let query = parse_query(sql, &index.base.schema)?;
            let front = ServeFrontend::new(
                DgfEngine::new(Arc::clone(&index)),
                ServeOptions {
                    workers: clients,
                    batch_window_us: window,
                    ..ServeOptions::default()
                },
            );
            let queries: Vec<Query> = vec![query; repeat];
            let report = front.run_concurrent(&queries, clients);

            if let Some(result) = report.served.iter().find_map(|s| s.result.as_ref()) {
                print_query_result(result);
            }
            let snap = front.stats().snapshot();
            let (multi_gets, scans, subops) = router.fanout().snapshot();
            eprintln!(
                "-- served {} queries over {shards} shards ({pairs} GFU pairs, {clients} clients): \
                 {:.1} qps | p50 {}us | p99 {}us",
                snap.completed,
                report.qps(),
                report.latency_us_at(0.5),
                report.latency_us_at(0.99),
            );
            eprintln!(
                "-- admitted {} | rejected {} | failed {} | cross-shard scatters {} | shard subops {}",
                snap.admitted,
                snap.rejected,
                snap.failed,
                multi_gets + scans,
                subops,
            );
            Ok(())
        }
        "maintain" => {
            use dgfindex::core::{MaintenanceConfig, Maintainer};
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let index_name = args.get(2).ok_or_else(bad_usage)?;
            let index = Arc::new(w.open_index(index_name)?);
            let mut config = MaintenanceConfig::default();
            if let Some(budget) = flag(args, "--budget") {
                config.delta_file_budget = budget
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad --budget: {e}")))?;
            }
            config.adapt = args.iter().any(|a| a == "--adapt");
            if let Some(n) = flag(args, "--split-above") {
                config.split_records_per_cell = n
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad --split-above: {e}")))?;
            }
            if let Some(n) = flag(args, "--merge-below") {
                config.merge_records_per_cell = n
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad --merge-below: {e}")))?;
            }
            // If the index has a streaming WAL, drain it first so every
            // acknowledged row is a Slice the compactor can fold in.
            let wal = w.wal_path(index_name);
            if wal.is_file() {
                let ingestor = Arc::new(StreamIngestor::open(
                    Arc::clone(&index),
                    wal,
                    IngestConfig {
                        auto_flush_interval: None,
                        ..IngestConfig::default()
                    },
                )?);
                config.flush_hook = Some(Box::new(move || ingestor.flush()));
            }
            let maintainer = Maintainer::new(Arc::clone(&index), config);
            let report = maintainer.run_once()?;
            w.save()?;
            println!(
                "maintenance pass: reclaimed {} deferred file(s), flushed {} batch(es), \
                 compacted {} file(s) across {} GFU(s), reclaimed {} KV log byte(s)",
                report.reclaimed_files,
                report.flushed_batches,
                report.compacted_files,
                report.compacted_gfus,
                report.kv_reclaimed_bytes,
            );
            match report.adapted {
                Some(desc) => println!("grid adapted: {desc}"),
                None => println!("grid unchanged"),
            }
            Ok(())
        }
        "advise" => {
            let w = Warehouse::open(args.get(1).ok_or_else(bad_usage)?)?;
            let table = w.ctx.table(args.get(2).ok_or_else(bad_usage)?)?;
            let dims: Vec<String> = flag(args, "--dims")
                .ok_or_else(bad_usage)?
                .split(',')
                .map(|s| s.trim().to_owned())
                .collect();
            let history_text = flag(args, "--history").ok_or_else(bad_usage)?;
            let mut preds = Vec::new();
            for p in history_text.split(';') {
                preds.push(parse_predicate(p.trim(), &table.schema)?);
            }
            let sample = w.ctx.read_all(&table)?;
            let rows_total = sample.len() as u64;
            let rec = recommend_policy(
                &sample,
                &table.schema,
                &dims,
                &history_from_predicates(&preds),
                rows_total,
                &AdvisorConfig::default(),
            )?;
            println!(
                "recommended policy (expected cost {:.1}, ~{:.0} cells):",
                rec.expected_cost, rec.expected_cells
            );
            for (d, c) in rec.policy.dims().iter().zip(&rec.counts) {
                println!("  {}: {:?} (~{c} intervals)", d.name, d.scale);
            }
            Ok(())
        }
        other => Err(DgfError::Query(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

fn read_rows_file(path: &str, schema: &Schema) -> Result<Vec<Row>> {
    let f = std::fs::File::open(Path::new(path))?;
    let mut rows = Vec::new();
    for (i, line) in std::io::BufReader::new(f).lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        rows.push(parse_row(&line, schema).map_err(|e| {
            DgfError::Schema(format!("{path}:{}: {e}", i + 1))
        })?);
    }
    Ok(rows)
}

/// Parse `"col:min:interval,..."`; min is a date literal for date columns.
fn parse_dims_spec(text: &str, schema: &Schema) -> Result<SplittingPolicy> {
    let mut dims = Vec::new();
    for part in text.split(',') {
        let fields: Vec<&str> = part.trim().split(':').collect();
        if fields.len() != 3 {
            return Err(DgfError::Query(format!(
                "expected col:min:interval, found {part:?}"
            )));
        }
        let (name, min_s, int_s) = (fields[0], fields[1], fields[2]);
        let dim = match schema.type_of(name)? {
            ValueType::Int => DimPolicy::int(
                name,
                min_s
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad min {min_s:?}: {e}")))?,
                int_s
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad interval {int_s:?}: {e}")))?,
            ),
            ValueType::Date => DimPolicy::date(
                name,
                parse_date(min_s)?,
                int_s
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad interval {int_s:?}: {e}")))?,
            ),
            ValueType::Float => DimPolicy::float(
                name,
                min_s
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad min {min_s:?}: {e}")))?,
                int_s
                    .parse()
                    .map_err(|e| DgfError::Query(format!("bad interval {int_s:?}: {e}")))?,
            ),
            ValueType::Str => {
                return Err(DgfError::Query(format!(
                    "{name:?} is a string column; grid dimensions must be numeric or date"
                )))
            }
        };
        dims.push(dim);
    }
    SplittingPolicy::new(dims)
}

fn print_result(run: &EngineRun) {
    print_query_result(&run.result);
    eprintln!("-- {}", run.stats);
}

fn print_query_result(result: &QueryResult) {
    match result {
        QueryResult::Scalars(vals) => {
            println!(
                "{}",
                vals.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
        }
        QueryResult::Groups(groups) => {
            for (k, vals) in groups {
                println!(
                    "{k} | {}",
                    vals.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(" | ")
                );
            }
        }
        QueryResult::Rows(rows) => {
            for r in rows {
                println!("{}", dgfindex::common::format_row(r));
            }
        }
    }
}
