//! Quickstart: the paper's worked example end to end.
//!
//! Builds the Figure 5 table, constructs a DGFIndex with the paper's
//! splitting policy (A: min 1 interval 3, B: min 11 interval 2) and
//! pre-computed `sum(C)`, then runs the Listing 2 query and shows the
//! inner/boundary decomposition of Figure 7.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use dgfindex::core::index::{paper_figure5_policy, paper_figure5_rows};
use dgfindex::core::all_gfus;
use dgfindex::prelude::*;

fn main() -> dgfindex::common::Result<()> {
    // --- a simulated cluster and a tiny Hive warehouse -----------------
    let tmp = TempDir::new("quickstart")?;
    let hdfs = SimHdfs::open(tmp.path())?;
    let ctx = HiveContext::new(hdfs, MrEngine::new(2));

    let schema = Arc::new(Schema::from_pairs(&[
        ("A", ValueType::Int),
        ("B", ValueType::Int),
        ("C", ValueType::Float),
    ]));
    let table = ctx.create_table("fig5", schema, FileFormat::Text)?;
    ctx.load_rows(&table, &paper_figure5_rows(), 1)?;
    println!("loaded the paper's Figure 5 table: 9 records (A, B, C)");

    // --- CREATE INDEX ... IDXPROPERTIES('A'='1_3','B'='11_2',
    //     'precompute'='sum(C)')  (paper Listing 3) ----------------------
    let (index, report) = DgfIndex::build(
        Arc::clone(&ctx),
        table,
        paper_figure5_policy(),
        vec![AggFunc::Sum("C".into())],
        Arc::new(MemKvStore::new()),
        "dgf_fig5",
    )?;
    println!(
        "built DGFIndex: {} GFUs, {} bytes of index, in {:?}",
        report.index_entries, report.index_size_bytes, report.build_time
    );

    // The GFU key-value pairs of Figure 6.
    println!("\nGFUKey -> (records, slices, paper key)");
    let mut gfus = all_gfus(index.kv.as_ref(), 2)?;
    gfus.sort_by(|a, b| a.0.cmp(&b.0));
    for (key, value) in &gfus {
        // Convert cell coordinates back to the paper's lower-left values.
        let policy = index.policy();
        let a = policy.dims()[0].cell_low(key.cells[0]);
        let b = policy.dims()[1].cell_low(key.cells[1]);
        println!(
            "  cells {:?} = key {a}_{b}: {} record(s), {} slice(s)",
            key.cells,
            value.record_count,
            value.slices.len()
        );
    }

    // --- the Listing 2 query -------------------------------------------
    let query = Query::Aggregate {
        aggs: vec![AggFunc::Sum("C".into())],
        predicate: Predicate::all()
            .and("A", ColumnRange::half_open(Value::Int(5), Value::Int(12)))
            .and("B", ColumnRange::half_open(Value::Int(12), Value::Int(16))),
    };
    let index = Arc::new(index);
    let plan = index.plan(&query, true)?;
    println!(
        "\nListing 2 query decomposition: {} inner GFU(s) answered from headers \
         ({} records never read), {} boundary GFU(s) scanned",
        plan.inner_gfus, plan.inner_records, plan.boundary_gfus
    );

    let run = DgfEngine::new(index).run(&query)?;
    println!("SELECT SUM(C) WHERE 5<=A<12 AND 12<=B<16  =>  {}", run.result);
    println!("cost: {}", run.stats);
    Ok(())
}
