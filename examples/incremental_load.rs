//! Incremental loading: the daily meter-data ingest flow.
//!
//! The paper's contribution (iii): because the collection timestamp is a
//! default index dimension and meter data is append-only in time, new
//! data extends the grid — the index never needs rebuilding, and the
//! ingest path stays as fast as raw HDFS writes. This example ingests a
//! month one day at a time and queries across the growing index after
//! every week.
//!
//! ```sh
//! cargo run --release --example incremental_load
//! ```

use std::sync::Arc;

use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, MeterConfig};

fn main() -> dgfindex::common::Result<()> {
    let cfg = MeterConfig {
        users: 1_500,
        days: 30,
        ..MeterConfig::default()
    };
    let all_rows = generate_meter_data(&cfg);
    let per_day = all_rows.len() / cfg.days as usize;

    let tmp = TempDir::new("incremental")?;
    let hdfs = SimHdfs::open(tmp.path())?;
    let ctx = HiveContext::new(hdfs, MrEngine::default());
    let meter = ctx.create_table("meterdata", meter_schema(), FileFormat::Text)?;
    // Start with day 0 only.
    ctx.load_rows(&meter, &all_rows[..per_day], 1)?;

    let policy = SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 100),
        DimPolicy::int("region_id", 0, 1),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])?;
    let (index, _) = DgfIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&meter),
        policy,
        vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count],
        Arc::new(MemKvStore::new()),
        "dgf_meter",
    )?;
    let index = Arc::new(index);
    println!(
        "day 1 indexed: {} GFUs",
        index.gfu_count()?
    );

    // Ingest the remaining days one at a time — each append is a small
    // construction job over only the new file; no rebuild ever happens.
    for day in 1..cfg.days as usize {
        let chunk = &all_rows[day * per_day..(day + 1) * per_day];
        let report = index.append(chunk)?;
        if (day + 1) % 7 == 0 || day + 1 == cfg.days as usize {
            // Query the whole history so far.
            let q = Query::Aggregate {
                aggs: vec![AggFunc::Count, AggFunc::Sum("power_consumed".into())],
                predicate: Predicate::all().and(
                    "ts",
                    ColumnRange::half_open(
                        Value::Date(cfg.start_day),
                        Value::Date(cfg.start_day + (day as i64 + 1)),
                    ),
                ),
            };
            let run = DgfEngine::new(Arc::clone(&index)).run(&q)?;
            let vals = run.result.into_scalars();
            println!(
                "after day {:>2}: {} GFUs ({:?} to extend), full-history count = {} \
                 (expected {}), sum = {}, records actually read: {}",
                day + 1,
                index.gfu_count()?,
                report.build_time,
                vals[0],
                per_day * (day + 1),
                vals[1],
                run.stats.data_records_read,
            );
        }
    }

    // The whole-history aggregation never touched the data: every cell is
    // inner and answered from headers.
    let q = Query::Aggregate {
        aggs: vec![AggFunc::Count],
        predicate: Predicate::all(),
    };
    let run = DgfEngine::new(Arc::clone(&index)).run(&q)?;
    println!(
        "\nfinal count(*) over {} rows read {} data records ({} from pre-computed headers)",
        all_rows.len(),
        run.stats.data_records_read,
        all_rows.len() as u64 - run.stats.data_records_read,
    );

    // Sanity: the incremental index agrees with a scan of the base table.
    let scan = ScanEngine::new(Arc::clone(&ctx), meter).run(&q)?;
    assert_eq!(
        scan.result.clone().into_scalars()[0],
        Value::Int(all_rows.len() as i64)
    );
    println!("scan agrees: {}", scan.result);
    Ok(())
}
