//! TPC-H Q6: the paper's "general case" (§5.4).
//!
//! On evenly scattered data the Compact Index filters nothing — it reads
//! the entire table *after* having scanned its own index table, ending up
//! slower than a plain scan — while DGFIndex, which physically
//! reorganizes rows into grid cells, reads a few hundred times less.
//!
//! ```sh
//! cargo run --release --example tpch_q6
//! ```

use std::sync::Arc;

use dgfindex::prelude::*;
use dgfindex::workload::tpch::{
    generate_lineitem, lineitem_schema, q6, q6_revenue_agg, ship_min_day, TpchConfig,
};

fn main() -> dgfindex::common::Result<()> {
    let cfg = TpchConfig {
        rows: 200_000,
        seed: 7,
    };
    println!("generating {} lineitem rows...", cfg.rows);
    let rows = generate_lineitem(&cfg);

    let tmp = TempDir::new("tpch")?;
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: 1024 * 1024,
            replication: 2,
        },
    )?;
    let ctx = HiveContext::new(hdfs, MrEngine::default());

    let text = ctx.create_table("lineitem", lineitem_schema(), FileFormat::Text)?;
    ctx.load_rows(&text, &rows, 8)?;
    let rc = ctx.create_table("lineitem_rc", lineitem_schema(), FileFormat::RcFile)?;
    ctx.load_rows(&rc, &rows, 8)?;

    // DGFIndex with the paper's §5.4 intervals: discount 0.01,
    // quantity 1.0, shipdate 100 days; pre-compute the Q6 revenue UDF
    // sum(l_extendedprice * l_discount).
    let policy = SplittingPolicy::new(vec![
        DimPolicy::float("l_discount", 0.0, 0.01),
        DimPolicy::float("l_quantity", 1.0, 1.0),
        DimPolicy::date("l_shipdate", ship_min_day(), 100),
    ])?;
    let (dgf, dgf_report) = DgfIndex::build(
        Arc::clone(&ctx),
        text.clone(),
        policy,
        vec![q6_revenue_agg()],
        Arc::new(MemKvStore::new()),
        "dgf_lineitem",
    )?;
    let (compact, compact_report) = CompactIndex::build(
        Arc::clone(&ctx),
        rc,
        vec!["l_discount".into(), "l_quantity".into(), "l_shipdate".into()],
        "compact3_lineitem",
    )?;
    println!(
        "DGFIndex: {} GFUs / {} B   Compact-3D: {} entries / {} B",
        dgf_report.index_entries,
        dgf_report.index_size_bytes,
        compact_report.index_entries,
        compact_report.index_size_bytes
    );

    let query = q6(1994, 0.06, 24.0);
    println!("\nTPC-H Q6: shipdate in 1994, discount 0.05..0.07, quantity < 24\n");
    let engines: Vec<(&str, Box<dyn Engine>)> = vec![
        ("DGFIndex", Box::new(DgfEngine::new(Arc::new(dgf)))),
        ("Compact-3D", Box::new(CompactEngine::new(Arc::new(compact)))),
        ("ScanTable", Box::new(ScanEngine::new(Arc::clone(&ctx), text))),
    ];
    for (name, engine) in engines {
        let run = engine.run(&query)?;
        println!("  {name:<11} revenue = {:<20} {}", run.result.to_string(), run.stats);
    }
    Ok(())
}
