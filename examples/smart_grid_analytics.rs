//! Smart-grid analytics: the paper's motivating workload.
//!
//! Generates a month of meter data for a scaled-down province, builds a
//! 3-D DGFIndex on (userId, regionId, time) with pre-computed
//! `sum(powerConsumed)`, and answers the two ad-hoc questions from the
//! paper's §2.1 plus the Listing 5 GROUP BY and Listing 6 JOIN — each
//! compared against a full table scan.
//!
//! ```sh
//! cargo run --release --example smart_grid_analytics
//! ```

use std::sync::Arc;

use dgfindex::prelude::*;
use dgfindex::workload::{
    generate_meter_data, generate_user_info, meter_schema, user_info_schema, MeterConfig,
};

fn show(name: &str, run: &EngineRun, baseline: &EngineRun) {
    let speedup = baseline.stats.total_time().as_secs_f64()
        / run.stats.total_time().as_secs_f64().max(1e-9);
    println!(
        "  {name:<22} -> {}\n    {} ({speedup:.1}x vs scan; scan read {} records)",
        run.result,
        run.stats,
        baseline.stats.data_records_read
    );
}

fn main() -> dgfindex::common::Result<()> {
    let cfg = MeterConfig {
        users: 5_000,
        regions: 11,
        days: 30,
        ..MeterConfig::default()
    };
    println!(
        "generating {} meter records ({} users x {} days, {} regions)...",
        cfg.row_count(),
        cfg.users,
        cfg.days,
        cfg.regions
    );
    let rows = generate_meter_data(&cfg);
    let user_rows = generate_user_info(&cfg);

    let tmp = TempDir::new("smartgrid")?;
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: 1024 * 1024,
            replication: 2,
        },
    )?;
    let ctx = HiveContext::new(hdfs, MrEngine::default());
    let meter = ctx.create_table("meterdata", meter_schema(), FileFormat::Text)?;
    ctx.load_rows(&meter, &rows, 6)?;
    let users = ctx.create_table("user_info", user_info_schema(), FileFormat::Text)?;
    ctx.load_rows(&users, &user_rows, 1)?;

    // One DGFIndex per table (the index *is* a reorganization of it).
    let policy = SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, (cfg.users / 50) as i64),
        DimPolicy::int("region_id", 0, 1),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])?;
    let (index, report) = DgfIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&meter),
        policy,
        vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count],
        Arc::new(MemKvStore::new()),
        "dgf_meter",
    )?;
    println!(
        "DGFIndex built: {} GFUs, {}B, {:?}\n",
        report.index_entries, report.index_size_bytes, report.build_time
    );
    let index = Arc::new(index);
    let dgf = DgfEngine::new(Arc::clone(&index)).with_right(Arc::clone(&users));
    let scan = ScanEngine::new(Arc::clone(&ctx), Arc::clone(&meter)).with_right(users);

    // §2.1 question 1: average power consumption of a user range in a
    // date range.
    let q1 = Query::Aggregate {
        aggs: vec![AggFunc::Avg("power_consumed".into())],
        predicate: Predicate::all()
            .and("user_id", ColumnRange::half_open(Value::Int(100), Value::Int(1000)))
            .and(
                "ts",
                ColumnRange::half_open(
                    Value::Date(parse_date("2012-12-05")?),
                    Value::Date(parse_date("2012-12-20")?),
                ),
            ),
    };
    println!("Q1: average consumption, users 100..1000, Dec 5-20");
    show("DGFIndex", &dgf.run(&q1)?, &scan.run(&q1)?);

    // §2.1 question 2: how many users consumed within a power band.
    let q2 = Query::Aggregate {
        aggs: vec![AggFunc::Count],
        predicate: Predicate::all()
            .and(
                "power_consumed",
                ColumnRange::open(Value::Float(12.0), Value::Float(23.0)),
            )
            .and(
                "ts",
                ColumnRange::half_open(
                    Value::Date(parse_date("2012-12-01")?),
                    Value::Date(parse_date("2012-12-08")?),
                ),
            ),
    };
    println!("\nQ2: readings with power in (12, 23), first week (power is not indexed)");
    show("DGFIndex", &dgf.run(&q2)?, &scan.run(&q2)?);

    // Listing 5: per-day totals for a region.
    let q3 = Query::GroupBy {
        key: "ts".into(),
        aggs: vec![AggFunc::Sum("power_consumed".into())],
        predicate: Predicate::all()
            .and("region_id", ColumnRange::half_open(Value::Int(2), Value::Int(6)))
            .and("user_id", ColumnRange::half_open(Value::Int(0), Value::Int(2500))),
    };
    println!("\nQ3 (Listing 5): daily totals, regions 2..6, first half of users");
    show("DGFIndex", &dgf.run(&q3)?, &scan.run(&q3)?);

    // Listing 6: join with the archive user table.
    let q4 = Query::Join {
        left_key: "user_id".into(),
        right_key: "user_id".into(),
        left_project: vec!["power_consumed".into()],
        right_project: vec!["user_name".into()],
        predicate: Predicate::all()
            .and("user_id", ColumnRange::half_open(Value::Int(40), Value::Int(45)))
            .and(
                "ts",
                ColumnRange::eq(Value::Date(parse_date("2012-12-15")?)),
            ),
    };
    println!("\nQ4 (Listing 6): user names + consumption on Dec 15, users 40..45");
    show("DGFIndex", &dgf.run(&q4)?, &scan.run(&q4)?);

    Ok(())
}
