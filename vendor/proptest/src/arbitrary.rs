//! `any::<T>()` over the primitive types the workspace samples.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-width integer strategy with a bias toward boundary values so
/// MIN/MAX/0 show up at practical case counts.
#[derive(Debug, Clone, Copy)]
pub struct IntAny<T>(PhantomData<T>);

macro_rules! impl_int_arbitrary {
    ($($t:ty),*) => {$(
        impl Strategy for IntAny<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                const EDGES: [$t; 4] = [<$t>::MIN, 0, 1, <$t>::MAX];
                if rng.below(16) == 0 {
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }

        impl Arbitrary for $t {
            type Strategy = IntAny<$t>;

            fn arbitrary() -> Self::Strategy {
                IntAny(PhantomData)
            }
        }
    )*};
}

impl_int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolAny;

    fn arbitrary() -> Self::Strategy {
        BoolAny
    }
}
