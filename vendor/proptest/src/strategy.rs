//! The [`Strategy`] trait and the core combinators: ranges, tuples,
//! [`Just`], [`Map`], and [`Union`] (the engine behind `prop_oneof!`).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Object-safe: the only required method is [`Strategy::sample`];
/// combinators are `where Self: Sized` so `Box<dyn Strategy<Value = V>>`
/// works (that is what [`Union`] stores).
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erase, for storing heterogeneous strategies together.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_inclusive(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_inclusive(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
