//! Deterministic case runner: config, error type, and the RNG handed to
//! strategies.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required before the test succeeds.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; these suites do real file and
        // KV I/O per case, so keep the unconfigured default moderate.
        ProptestConfig { cases: 64 }
    }
}

/// Human-readable failure reason.
#[derive(Debug, Clone)]
pub struct Reason(String);

impl From<&str> for Reason {
    fn from(s: &str) -> Self {
        Reason(s.to_owned())
    }
}

impl From<String> for Reason {
    fn from(s: String) -> Self {
        Reason(s)
    }
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated: the whole test fails.
    Fail(Reason),
    /// The input was unsuitable: the case is skipped, not counted.
    Reject(Reason),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<Reason>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<Reason>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// The random source strategies draw from: xoshiro256** seeded through
/// SplitMix64, same construction as the vendored `rand` but independent
/// of it so the two crates have no dependency edge.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform integer in `[lo, hi]`, wide enough for any primitive int.
    pub fn int_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty integer range");
        let span = (hi - lo) as u128 + 1;
        let word = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (word % span) as i128
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits of one word.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `f` until `config.cases` cases pass. The seed of each case is a
/// pure function of the test name and case number, so failures reproduce
/// across runs and machines.
pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        case += 1;
        let mut rng = TestRng::from_seed(seed);
        match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(16),
                    "proptest '{name}': too many rejected cases ({rejected})"
                );
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!("proptest '{name}' failed at case #{case} (seed {seed:#018x}): {reason}")
            }
            Err(payload) => {
                eprintln!("proptest '{name}' panicked at case #{case} (seed {seed:#018x})");
                resume_unwind(payload);
            }
        }
    }
}
