//! Numeric strategies mirroring `proptest::num`.

/// `f64` strategies.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly random *normal* `f64` bit patterns: random sign, biased
    /// exponent in `1..=2046`, random mantissa. Never zero, subnormal,
    /// infinite, or NaN.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalStrategy;

    pub const NORMAL: NormalStrategy = NormalStrategy;

    impl Strategy for NormalStrategy {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let sign = rng.next_u64() & (1 << 63);
            let exponent = rng.int_inclusive(1, 2046) as u64;
            let mantissa = rng.next_u64() & ((1 << 52) - 1);
            f64::from_bits(sign | (exponent << 52) | mantissa)
        }
    }
}
