//! `&'static str` as a strategy: a small regex subset of the form
//! `"[<class>]{m}"` / `"[<class>]{m,n}"`, which is the only shape the
//! workspace's tests use (e.g. `"[a-zA-Z0-9 _.,-]{0,24}"`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = rng.int_inclusive(lo as i128, hi as i128) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[<class>]{m}` or `[<class>]{m,n}` into (alphabet, m, n).
/// `<class>` supports `a-z` ranges and literal characters; a `-` that is
/// not between two characters is a literal.
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let fail = || -> ! {
        panic!(
            "vendored proptest only supports string patterns of the form \
             \"[chars]{{m,n}}\", got {pattern:?}"
        )
    };
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| fail());
    let (class, counts) = rest.split_once(']').unwrap_or_else(|| fail());
    let counts = counts
        .strip_prefix('{')
        .and_then(|c| c.strip_suffix('}'))
        .unwrap_or_else(|| fail());
    let (lo, hi) = match counts.split_once(',') {
        Some((m, n)) => (
            m.parse().unwrap_or_else(|_| fail()),
            n.parse().unwrap_or_else(|_| fail()),
        ),
        None => {
            let m: usize = counts.parse().unwrap_or_else(|_| fail());
            (m, m)
        }
    };
    if lo > hi || class.is_empty() {
        fail();
    }

    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        // `a-z` range: needs a character on both sides of the dash.
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                fail();
            }
            alphabet.extend(a..=b);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    (alphabet, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::parse_pattern;

    #[test]
    fn parses_ranges_and_literals() {
        let (alpha, lo, hi) = parse_pattern("[a-zA-Z0-9 _.,-]{0,24}");
        assert_eq!((lo, hi), (0, 24));
        for c in ['a', 'z', 'A', 'Z', '0', '9', ' ', '_', '.', ',', '-'] {
            assert!(alpha.contains(&c), "missing {c:?}");
        }
        assert!(!alpha.contains(&'!'));
    }

    #[test]
    fn parses_exact_count() {
        let (alpha, lo, hi) = parse_pattern("[ab]{3}");
        assert_eq!((lo, hi), (3, 3));
        assert_eq!(alpha, vec!['a', 'b']);
    }

    #[test]
    #[should_panic(expected = "only supports string patterns")]
    fn rejects_unsupported_shapes() {
        parse_pattern("hello.*");
    }
}
