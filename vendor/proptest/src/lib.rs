//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the exact API subset this workspace's property tests use:
//! the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, [`strategy::Strategy`] with `prop_map`,
//! range / tuple / `Just` / string-pattern strategies,
//! [`collection::vec`], [`num::f64::NORMAL`], and [`arbitrary::any`].
//!
//! Differences from real proptest, on purpose:
//! - Cases are generated from a seed derived from the test's module path
//!   and case number, so runs are fully deterministic — a failure message
//!   includes the case seed, and re-running reproduces it.
//! - No shrinking. The failing input is printed as-is via the failure
//!   message; inputs here are small enough to eyeball.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import target: `use proptest::prelude::*;`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, Reason, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by any number of
/// `fn name(arg in strategy, ...) { body }` items, each carrying its own
/// outer attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Choose uniformly between several strategies producing the same value
/// type. (Weights are not supported; the workspace does not use them.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// [`test_runner::TestCaseError::Fail`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} at {}:{}",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}` at {}:{}",
                    __left,
                    __right,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}` at {}:{}",
                    __left,
                    __right,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_in_bounds(a in -5i64..10, b in 3u8..=9, n in 1usize..4) {
            prop_assert!((-5..10).contains(&a));
            prop_assert!((3..=9).contains(&b));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u8..16, 1u64..100), 0..20),
        ) {
            prop_assert!(v.len() < 20);
            for (k, x) in &v {
                prop_assert!(*k < 16 && (1..100).contains(x));
            }
        }

        #[test]
        fn oneof_maps_and_just(
            x in prop_oneof![
                Just(0i64),
                (1i64..10).prop_map(|v| v * 100),
                any::<i64>().prop_map(|v| v.min(5)),
            ],
        ) {
            prop_assert!(x == 0 || (100..1000).contains(&x) || x <= 5);
        }

        #[test]
        fn string_pattern_respects_class_and_len(s in "[a-c ]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c == ' ' || ('a'..='c').contains(&c)));
        }

        #[test]
        fn normal_floats_are_normal(f in prop::num::f64::NORMAL) {
            prop_assert!(f.is_normal());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let collect = || {
            let mut out = Vec::new();
            crate::test_runner::run(
                &ProptestConfig::with_cases(16),
                "vendor::determinism",
                |rng| {
                    out.push((0i64..1000).sample(rng));
                    Ok(())
                },
            );
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "boom marker")]
    fn failing_case_panics_with_reason() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "vendor::fail", |_| {
            Err(TestCaseError::fail("boom marker"))
        });
    }
}
