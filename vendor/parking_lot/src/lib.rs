//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repo builds in has no access to crates.io, so the
//! handful of external dependencies are vendored as minimal, API-compatible
//! implementations (see `vendor/README.md`). This one wraps
//! `std::sync::{Mutex, RwLock}` behind `parking_lot`'s panic-free guard
//! API: `lock()`/`read()`/`write()` return guards directly and a poisoned
//! lock is recovered instead of erroring (poisoning only matters after a
//! panic, at which point the test or job has already failed).

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
        assert_eq!(Arc::try_unwrap(m).unwrap().into_inner(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1); // no panic on reacquire
    }
}
