//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only the API this workspace uses is provided: [`scope`] with
//! crossbeam's signature — the closure passed to [`Scope::spawn`] receives
//! the scope again (for nested spawns) and `scope` returns `Err` when any
//! spawned thread panicked, instead of unwinding like
//! `std::thread::scope` does.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread handle passed to [`scope`]'s closure and to every
/// spawned thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread scoped to `'env`; like crossbeam, the closure is
    /// handed the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = *self;
        self.inner.spawn(move || f(&me))
    }
}

/// Create a scope for spawning borrowed-data threads. All threads are
/// joined before `scope` returns; a panic in any of them yields `Err`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let count = AtomicU64::new(0);
        let out = super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| count.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scopes_work() {
        let count = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|_| {
                super::scope(|inner| {
                    inner.spawn(|_| count.fetch_add(1, Ordering::Relaxed));
                })
                .unwrap();
            });
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_thread_yields_err() {
        let res = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
