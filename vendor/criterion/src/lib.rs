//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Provides the `Criterion` / `benchmark_group` / `bench_function` /
//! `Bencher::iter` surface the workspace's benches use, measuring plain
//! wall-clock time and printing one line per benchmark. No statistics,
//! plots, or baseline comparison.
//!
//! `cargo test` runs `harness = false` bench targets with `--test`; in
//! that mode each benchmark body executes exactly once so test runs stay
//! fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point, one per bench target.
pub struct Criterion {
    sample_size: usize,
    /// `--test` mode: run each routine once, skip timing-loop repeats.
    test_mode: bool,
    /// Substring filter from the command line, like real criterion.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Criterion {
            sample_size: 10,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one("", &id.into(), sample_size, f);
        self
    }

    fn run_one<F>(&self, group: &str, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = if group.is_empty() {
            id.to_owned()
        } else {
            format!("{group}/{id}")
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { sample_size },
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {full} ... ok");
        } else if b.iters > 0 {
            let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
            println!("{full:<60} {:>14}/iter ({} iters)", fmt_ns(per_iter), b.iters);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (name, sample_size) = (self.name.clone(), self.sample_size);
        self.criterion.run_one(&name, &id.into(), sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            drop(black_box(out));
        }
    }
}

/// Bundle benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.sample_size(3);
        let mut g = c.benchmark_group("g");
        g.bench_function("counted", |b| b.iter(|| runs += 1));
        g.finish();
        // 3 samples unless the test binary itself was passed --test.
        assert!(runs == 3 || runs == 1);
    }

    #[test]
    fn group_sample_size_overrides_default() {
        let mut c = Criterion {
            sample_size: 10,
            test_mode: false,
            filter: None,
        };
        let mut runs = 0usize;
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("counted", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 5);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
            filter: Some("match-me".into()),
        };
        let mut runs = 0usize;
        let mut g = c.benchmark_group("g");
        g.bench_function("other", |b| b.iter(|| runs += 1));
        g.bench_function("match-me", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 2);
    }
}
