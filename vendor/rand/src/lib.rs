//! Offline stand-in for the `rand` crate, 0.9 API subset (see
//! `vendor/README.md`).
//!
//! The workload generators only need a seedable, deterministic generator
//! with `random_range` over integer/float ranges and `random_bool`. The
//! core is xoshiro256** seeded through SplitMix64 — high-quality enough
//! that generated datasets keep realistic value dispersion, and fully
//! deterministic for a given seed so benches are reproducible.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, `rand 0.9` subset.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, `rand 0.9` subset.
pub trait Rng: RngCore {
    /// A uniform sample from `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut |_| self.next_u64())
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce uniform samples of `T`.
///
/// The sampler is passed as a closure so the trait stays object-safe for
/// the provided [`Rng::random_range`] default method; the `u32` argument
/// is unused and only keeps the closure type nameable.
pub trait SampleRange<T> {
    /// Draw one sample using `word` as the source of raw 64-bit values.
    fn sample(self, word: &mut dyn FnMut(u32) -> u64) -> T;
}

/// Element types `random_range` can sample. Mirrors rand's
/// `SampleUniform` so `Range<T>: SampleRange<T>` is a single generic
/// impl — that keeps type inference working for untyped integer
/// literals like `rng.random_range(1..30)`.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, word: &mut dyn FnMut(u32) -> u64) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, word: &mut dyn FnMut(u32) -> u64) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, word: &mut dyn FnMut(u32) -> u64) -> T {
        T::sample_half_open(self.start, self.end, word)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, word: &mut dyn FnMut(u32) -> u64) -> T {
        T::sample_inclusive(*self.start(), *self.end(), word)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, word: &mut dyn FnMut(u32) -> u64) -> $t {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (word(0) as u128) % span;
                (lo as i128 + offset as i128) as $t
            }

            fn sample_inclusive(lo: $t, hi: $t, word: &mut dyn FnMut(u32) -> u64) -> $t {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (word(0) as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, word: &mut dyn FnMut(u32) -> u64) -> $t {
                assert!(lo < hi, "empty range in random_range");
                lo + (unit_f64(word(0)) as $t) * (hi - lo)
            }

            fn sample_inclusive(lo: $t, hi: $t, word: &mut dyn FnMut(u32) -> u64) -> $t {
                assert!(lo <= hi, "empty range in random_range");
                lo + (unit_f64(word(0)) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = rng.random_range(-30..60);
            assert!((-30..60).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let z: i32 = rng.random_range(1..=50);
            assert!((1..=50).contains(&z));
            let f: f64 = rng.random_range(0.5..35.0);
            assert!((0.5..35.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn range_samples_cover_the_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: i64 = rng.random_range(5..5);
    }
}
